#pragma once

/// \file trace_io.hpp
/// \brief CSV serialization of traces so benches and examples can share one
/// generated workload (and users can plug in their own traces).
///
/// Format: one row per task.
///   job_id,structure,arrival_s,task_index,length_s,memory_mb,priority,
///   prio_change_time,new_priority,failure_dates...
/// where `failure_dates...` is a ';'-separated list (may be empty) and
/// `prio_change_time` is -1 when no change is scheduled. A header row is
/// written and required on read.

#include <iosfwd>
#include <string>

#include "trace/records.hpp"

namespace cloudcr::trace {

/// Writes a trace as CSV. Throws std::runtime_error on stream failure.
void write_csv(std::ostream& os, const Trace& trace);
void write_csv_file(const std::string& path, const Trace& trace);

/// Reads a trace from CSV written by write_csv. Throws std::runtime_error on
/// malformed input.
Trace read_csv(std::istream& is);
Trace read_csv_file(const std::string& path);

}  // namespace cloudcr::trace
