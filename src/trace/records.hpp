#pragma once

/// \file records.hpp
/// \brief Trace records: jobs, tasks, and their pre-sampled failure events.
///
/// Mirrors the structure of the Google cluster trace the paper replays: each
/// job is either a chain of sequential tasks (ST) or a bag-of-tasks (BoT);
/// each task carries its productive length, memory footprint, priority, and
/// the kill/evict events that strike it.
///
/// Failure dates are expressed in the task's *active time* — the clock that
/// runs only while the task occupies a VM. Replaying the same trace under
/// different checkpoint policies therefore delivers identical kill sequences,
/// which is how the paper obtains paired per-job comparisons (Fig 13).

#include <cstdint>
#include <limits>
#include <vector>

namespace cloudcr::trace {

/// Job structure, as in the Google trace (paper Section 5.1).
enum class JobStructure : std::uint8_t {
  kSequentialTasks,  ///< tasks run one after another (ST)
  kBagOfTasks,       ///< tasks run in parallel (BoT)
};

/// Returns "ST" or "BoT".
const char* structure_name(JobStructure s) noexcept;

/// Priorities span 1..12 as in the Google trace.
inline constexpr int kMinPriority = 1;
inline constexpr int kMaxPriority = 12;

/// Sentinel for "no priority change scheduled".
inline constexpr double kNoPriorityChange = -1.0;

/// One cloud task: an instance of a service running inside a VM.
struct TaskRecord {
  std::uint64_t job_id = 0;
  std::uint32_t index_in_job = 0;

  /// Productive execution time Te (s): the time to process the workload with
  /// no failures and no fault-tolerance overhead.
  double length_s = 0.0;

  /// Memory footprint (MB); determines checkpoint/restart costs and gates VM
  /// placement (VMs hold 1 GB).
  double memory_mb = 0.0;

  /// Abstract input-parameter size the job parser sees at submission;
  /// correlated with length_s so that regression-based workload prediction
  /// (paper ref [22]) has signal to learn from.
  double input_size = 0.0;

  /// Priority at submission, 1 (lowest) .. 12 (highest).
  int priority = kMinPriority;

  /// Kill/evict dates in active time, strictly increasing.
  std::vector<double> failure_dates;

  /// If >= 0: active-time instant at which the task's priority changes to
  /// `new_priority` (used by the Fig 14 dynamic-vs-static experiment).
  /// `failure_dates` are already sampled consistently with the change.
  double priority_change_time = kNoPriorityChange;
  int new_priority = 0;

  /// True if the record schedules a mid-execution priority change.
  [[nodiscard]] bool has_priority_change() const noexcept {
    return priority_change_time >= 0.0;
  }

  /// Priority in effect at the given active-time instant.
  [[nodiscard]] int priority_at(double active_time) const noexcept {
    return (has_priority_change() && active_time >= priority_change_time)
               ? new_priority
               : priority;
  }

  /// Number of failure events that strike within the first `active_horizon`
  /// seconds of active time (the trace-recorded failure count).
  [[nodiscard]] std::size_t failures_within(double active_horizon) const;

  /// Uninterrupted work intervals observed during `active_horizon` of active
  /// time: gaps between consecutive failures plus the trailing censored
  /// interval from the last failure (or start) to the horizon. This is what
  /// the paper plots in Fig 4 and feeds MTBF estimation.
  [[nodiscard]] std::vector<double> uninterrupted_intervals(
      double active_horizon) const;
};

/// One user request: a set of tasks with a common structure.
struct JobRecord {
  std::uint64_t id = 0;
  JobStructure structure = JobStructure::kSequentialTasks;
  double arrival_s = 0.0;
  std::vector<TaskRecord> tasks;

  /// Sum of task productive lengths — for ST this is also the critical path;
  /// for BoT the critical path is the longest task.
  [[nodiscard]] double total_length() const;
  /// Length of the job's critical path given its structure.
  [[nodiscard]] double critical_path() const;
  /// Largest single-task memory footprint.
  [[nodiscard]] double max_task_memory() const;
  /// Sum of task memory footprints.
  [[nodiscard]] double total_memory() const;
  /// Number of tasks with at least one failure within their own length.
  [[nodiscard]] std::size_t failed_task_count() const;
};

/// A full synthetic trace: jobs ordered by arrival plus the horizon covered.
struct Trace {
  std::vector<JobRecord> jobs;
  double horizon_s = 0.0;

  [[nodiscard]] std::size_t job_count() const noexcept { return jobs.size(); }
  [[nodiscard]] std::size_t task_count() const;
};

/// Restricts a trace to jobs whose every task is at most `limit_s` long
/// (the paper's "restricted length" RL experiments and the <= 6 h replay
/// envelope of Fig 8). An infinite limit returns the trace unchanged.
Trace restrict_length(const Trace& trace, double limit_s);

}  // namespace cloudcr::trace
