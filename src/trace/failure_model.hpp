#pragma once

/// \file failure_model.hpp
/// \brief Priority-dependent task failure (kill/evict) model.
///
/// The Google trace exhibits a structure that plain renewal models cannot
/// reproduce (paper Table 7): grouped by priority, the mean number of
/// failures per task (MNOF) is nearly independent of the task-length class,
/// while the mean time between failures (MTBF) inflates dramatically once
/// long tasks enter the group. The paper attributes this to the Pareto-like
/// tail of failure intervals: "a majority of failure intervals are short
/// while a minority are extremely long".
///
/// We model this with per-task heterogeneity, which also matches the paper's
/// own formulation (it models the failure *count* distribution P(Y=K) per
/// task, not interval gaps):
///
///  * with probability `p_harassed(priority)` a task is *harassed*: it
///    suffers a burst of N kills (N geometric with mean `mean_kills`), whose
///    gaps are exponential with mean `mean_gap_s` — these produce the bulk of
///    short failure intervals (the <=1000 s window of Fig 5 where an
///    exponential fit wins);
///  * otherwise the task is *safe* and never killed — its full length shows
///    up as one long uninterrupted interval, producing the heavy tail that
///    inflates MTBF (the overall Pareto fit of Fig 5 and the Table 7 blow-up).
///
/// Priorities are calibrated so the derived MNOF/MTBF table matches the
/// structure of Table 7, including the deliberately non-monotonic priority 10
/// (monitoring-style tasks that are killed every ~40 s).

#include <array>
#include <vector>

#include "stats/rng.hpp"
#include "trace/records.hpp"

namespace cloudcr::trace {

/// Failure behaviour of one priority class.
struct PriorityProfile {
  double p_harassed = 0.0;  ///< probability a task suffers any kills
  double mean_kills = 1.0;  ///< mean burst size for harassed tasks (>= 1)
  double mean_gap_s = 100;  ///< mean gap between kills in a burst (s)
};

/// Kill/evict event generator over the 12 Google priorities.
class FailureModel {
 public:
  /// Builds a model from 12 profiles, indexed by priority-1.
  explicit FailureModel(
      std::array<PriorityProfile, kMaxPriority> profiles) noexcept;

  /// Default calibration reproducing the structure of the paper's Table 7.
  static FailureModel google_calibration();

  [[nodiscard]] const PriorityProfile& profile(int priority) const;

  /// Samples the failure dates (active time, strictly increasing) for a task
  /// of the given priority over an unbounded horizon; the burst terminates
  /// itself via the geometric kill count.
  [[nodiscard]] std::vector<double> sample_failure_dates(int priority,
                                                         stats::Rng& rng) const;

  /// Samples failure dates for a task whose priority changes at
  /// `change_time` (active time): events before the change come from the old
  /// priority's process, after it from a fresh process of the new priority.
  [[nodiscard]] std::vector<double> sample_failure_dates_with_change(
      int old_priority, int new_priority, double change_time,
      stats::Rng& rng) const;

  /// Closed-form expected number of kills within `active_horizon` seconds
  /// for a task of this priority:
  ///   E(Y) = p_harassed * sum_{k>=1} P(N >= k) * P(T_k <= horizon),
  /// evaluated by truncating the geometric sum (gamma CDF via series).
  [[nodiscard]] double expected_failures(int priority,
                                         double active_horizon) const;

 private:
  std::array<PriorityProfile, kMaxPriority> profiles_;
};

}  // namespace cloudcr::trace
