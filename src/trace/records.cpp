#include "trace/records.hpp"

#include <algorithm>

namespace cloudcr::trace {

const char* structure_name(JobStructure s) noexcept {
  return s == JobStructure::kSequentialTasks ? "ST" : "BoT";
}

std::size_t TaskRecord::failures_within(double active_horizon) const {
  const auto it = std::upper_bound(failure_dates.begin(), failure_dates.end(),
                                   active_horizon);
  return static_cast<std::size_t>(it - failure_dates.begin());
}

std::vector<double> TaskRecord::uninterrupted_intervals(
    double active_horizon) const {
  std::vector<double> intervals;
  double prev = 0.0;
  for (double date : failure_dates) {
    if (date > active_horizon) break;
    intervals.push_back(date - prev);
    prev = date;
  }
  if (active_horizon > prev) {
    intervals.push_back(active_horizon - prev);  // trailing censored interval
  }
  return intervals;
}

double JobRecord::total_length() const {
  double acc = 0.0;
  for (const auto& t : tasks) acc += t.length_s;
  return acc;
}

double JobRecord::critical_path() const {
  if (structure == JobStructure::kSequentialTasks) return total_length();
  double longest = 0.0;
  for (const auto& t : tasks) longest = std::max(longest, t.length_s);
  return longest;
}

double JobRecord::max_task_memory() const {
  double largest = 0.0;
  for (const auto& t : tasks) largest = std::max(largest, t.memory_mb);
  return largest;
}

double JobRecord::total_memory() const {
  double acc = 0.0;
  for (const auto& t : tasks) acc += t.memory_mb;
  return acc;
}

std::size_t JobRecord::failed_task_count() const {
  std::size_t n = 0;
  for (const auto& t : tasks) {
    if (t.failures_within(t.length_s) > 0) ++n;
  }
  return n;
}

std::size_t Trace::task_count() const {
  std::size_t n = 0;
  for (const auto& j : jobs) n += j.tasks.size();
  return n;
}

Trace restrict_length(const Trace& trace, double limit_s) {
  Trace out;
  out.horizon_s = trace.horizon_s;
  for (const auto& job : trace.jobs) {
    const bool ok = std::all_of(
        job.tasks.begin(), job.tasks.end(),
        [limit_s](const TaskRecord& task) { return task.length_s <= limit_s; });
    if (ok) out.jobs.push_back(job);
  }
  return out;
}

}  // namespace cloudcr::trace
