#include "trace/csv.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>

namespace cloudcr::trace::csv {

bool LineReader::next(std::string& line) {
  if (!std::getline(is_, line)) return false;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  ++line_;
  return true;
}

std::vector<std::string> split(const std::string& line, char sep) {
  std::vector<std::string> out;
  if (line.empty()) return out;
  std::string::size_type start = 0;
  for (;;) {
    const auto pos = line.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(line.substr(start));
      return out;
    }
    out.push_back(line.substr(start, pos - start));
    start = pos + 1;
  }
}

bool is_blank(const std::string& line) {
  return line.find_first_not_of(" \t") == std::string::npos;
}

std::runtime_error field_error(const std::string& label,
                               std::size_t line_number,
                               const std::string& problem,
                               const std::string& text) {
  std::ostringstream os;
  os << label << ": ";
  if (line_number > 0) os << "line " << line_number << ": ";
  os << problem << " '" << text << "'";
  return std::runtime_error(os.str());
}

double parse_double(const std::string& label, const std::string& text,
                    std::size_t line_number) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    throw field_error(label, line_number, "malformed number", text);
  }
  // "1e999" overflows to inf; an explicit "inf" token stays accepted and
  // underflow-to-subnormal is left alone (matches api::parse_checked_double).
  if (errno == ERANGE && std::isinf(v)) {
    throw field_error(label, line_number, "number out of range", text);
  }
  return v;
}

std::uint64_t parse_u64(const std::string& label, const std::string& text,
                        std::size_t line_number) {
  // strtoull skips leading whitespace and wraps signed input, so require the
  // first meaningful character to be a digit.
  const auto first = text.find_first_not_of(" \t");
  if (first == std::string::npos || text[first] < '0' || text[first] > '9') {
    throw field_error(label, line_number, "malformed integer", text);
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    throw field_error(label, line_number, "malformed integer", text);
  }
  if (errno == ERANGE) {
    throw field_error(label, line_number, "integer out of range", text);
  }
  return static_cast<std::uint64_t>(v);
}

int parse_int(const std::string& label, const std::string& text,
              std::size_t line_number) {
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    throw field_error(label, line_number, "malformed integer", text);
  }
  if (errno == ERANGE || v < std::numeric_limits<int>::min() ||
      v > std::numeric_limits<int>::max()) {
    throw field_error(label, line_number, "integer out of range", text);
  }
  return static_cast<int>(v);
}

}  // namespace cloudcr::trace::csv
