#pragma once

/// \file csv.hpp
/// \brief Streaming CSV tokenization shared by trace IO and the ingest
/// readers.
///
/// Every CSV-shaped reader in the codebase (trace::read_csv, the ingest
/// sources under src/ingest/) tokenizes through this module so the edge
/// cases are handled once: CRLF line endings, trailing blank lines, and
/// malformed or out-of-range numeric fields — all reported with 1-based
/// line numbers.
///
/// The readers are deliberately line-at-a-time: a LineReader holds one line
/// of state regardless of file size, which is what keeps month-scale
/// multi-hundred-MB logs ingestible in bounded memory.

#include <cstdint>
#include <istream>
#include <string>
#include <vector>

namespace cloudcr::trace::csv {

/// Reads lines from a stream, stripping a trailing '\r' (CRLF input) and
/// tracking the 1-based number of the line most recently returned.
class LineReader {
 public:
  explicit LineReader(std::istream& is) : is_(is) {}

  /// Fetches the next line into `line`; returns false at end of input.
  bool next(std::string& line);

  /// 1-based number of the line last returned by next(); 0 before the
  /// first call.
  [[nodiscard]] std::size_t line_number() const noexcept { return line_; }

 private:
  std::istream& is_;
  std::size_t line_ = 0;
};

/// Splits a line on `sep`. A trailing separator yields a trailing empty
/// field ("a,b," -> {"a", "b", ""}); an empty line yields no fields.
std::vector<std::string> split(const std::string& line, char sep);

/// True if the line is empty or whitespace-only (a trailing blank line).
bool is_blank(const std::string& line);

// -- checked field parsing ---------------------------------------------------
// All throw std::runtime_error with a message of the form
//   "<label>: line <n>: <problem> '<text>'"
// so a reader's caller can pinpoint the offending row. A line_number of 0
// omits the line clause — for non-row contexts (mapping/option strings,
// api::parse_checked_* delegating here).

/// Parses a double, rejecting empty fields, trailing garbage, and values
/// that overflow to infinity.
double parse_double(const std::string& label, const std::string& text,
                    std::size_t line_number);

/// Parses an unsigned 64-bit integer, rejecting signs (no silent wraparound
/// of negative input), trailing garbage, and out-of-range values.
std::uint64_t parse_u64(const std::string& label, const std::string& text,
                        std::size_t line_number);

/// Parses a signed int, rejecting trailing garbage and out-of-range values.
int parse_int(const std::string& label, const std::string& text,
              std::size_t line_number);

/// Builds the error that the parsers above throw (exposed so readers can
/// report row-level problems in the same format).
std::runtime_error field_error(const std::string& label,
                               std::size_t line_number,
                               const std::string& problem,
                               const std::string& text);

}  // namespace cloudcr::trace::csv
