#include "trace/trace_io.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace cloudcr::trace {

namespace {

constexpr char kHeader[] =
    "job_id,structure,arrival_s,task_index,length_s,memory_mb,input_size,"
    "priority,prio_change_time,new_priority,failure_dates";

std::vector<std::string> split(const std::string& line, char sep) {
  std::vector<std::string> out;
  std::string field;
  std::istringstream is(line);
  while (std::getline(is, field, sep)) out.push_back(field);
  if (!line.empty() && line.back() == sep) out.emplace_back();
  return out;
}

}  // namespace

void write_csv(std::ostream& os, const Trace& trace) {
  // Max digits10 + 2 guarantees bit-exact double round trips.
  os.precision(17);
  os << kHeader << '\n';
  os << "# horizon_s=" << trace.horizon_s << '\n';
  for (const auto& job : trace.jobs) {
    for (const auto& task : job.tasks) {
      os << job.id << ','
         << (job.structure == JobStructure::kSequentialTasks ? "ST" : "BoT")
         << ',' << job.arrival_s << ',' << task.index_in_job << ','
         << task.length_s << ',' << task.memory_mb << ',' << task.input_size
         << ',' << task.priority << ',' << task.priority_change_time << ','
         << task.new_priority << ',';
      for (std::size_t i = 0; i < task.failure_dates.size(); ++i) {
        if (i > 0) os << ';';
        os << task.failure_dates[i];
      }
      os << '\n';
    }
  }
  if (!os) throw std::runtime_error("write_csv: stream failure");
}

void write_csv_file(const std::string& path, const Trace& trace) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("write_csv_file: cannot open " + path);
  write_csv(os, trace);
}

Trace read_csv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != kHeader) {
    throw std::runtime_error("read_csv: missing or unexpected header");
  }

  Trace trace;
  // jobs keyed by id; tasks appended in row order.
  std::map<std::uint64_t, std::size_t> job_index;

  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      const auto pos = line.find("horizon_s=");
      if (pos != std::string::npos) {
        trace.horizon_s = std::stod(line.substr(pos + 10));
      }
      continue;
    }
    const auto fields = split(line, ',');
    if (fields.size() != 11) {
      throw std::runtime_error("read_csv: expected 11 fields, got " +
                               std::to_string(fields.size()));
    }

    const std::uint64_t job_id = std::stoull(fields[0]);
    auto [it, inserted] = job_index.try_emplace(job_id, trace.jobs.size());
    if (inserted) {
      JobRecord job;
      job.id = job_id;
      if (fields[1] == "ST") {
        job.structure = JobStructure::kSequentialTasks;
      } else if (fields[1] == "BoT") {
        job.structure = JobStructure::kBagOfTasks;
      } else {
        throw std::runtime_error("read_csv: bad structure " + fields[1]);
      }
      job.arrival_s = std::stod(fields[2]);
      trace.jobs.push_back(std::move(job));
    }

    TaskRecord task;
    task.job_id = job_id;
    task.index_in_job = static_cast<std::uint32_t>(std::stoul(fields[3]));
    task.length_s = std::stod(fields[4]);
    task.memory_mb = std::stod(fields[5]);
    task.input_size = std::stod(fields[6]);
    task.priority = std::stoi(fields[7]);
    task.priority_change_time = std::stod(fields[8]);
    task.new_priority = std::stoi(fields[9]);
    if (!fields[10].empty()) {
      for (const auto& d : split(fields[10], ';')) {
        if (!d.empty()) task.failure_dates.push_back(std::stod(d));
      }
      if (!std::is_sorted(task.failure_dates.begin(),
                          task.failure_dates.end())) {
        throw std::runtime_error("read_csv: failure dates not sorted");
      }
    }
    trace.jobs[it->second].tasks.push_back(std::move(task));
  }
  return trace;
}

Trace read_csv_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("read_csv_file: cannot open " + path);
  return read_csv(is);
}

}  // namespace cloudcr::trace
