#include "trace/trace_io.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <stdexcept>
#include <string>

#include "trace/csv.hpp"

namespace cloudcr::trace {

namespace {

constexpr char kHeader[] =
    "job_id,structure,arrival_s,task_index,length_s,memory_mb,input_size,"
    "priority,prio_change_time,new_priority,failure_dates";

constexpr char kLabel[] = "read_csv";

}  // namespace

void write_csv(std::ostream& os, const Trace& trace) {
  // Max digits10 + 2 guarantees bit-exact double round trips.
  os.precision(17);
  os << kHeader << '\n';
  os << "# horizon_s=" << trace.horizon_s << '\n';
  for (const auto& job : trace.jobs) {
    for (const auto& task : job.tasks) {
      os << job.id << ','
         << (job.structure == JobStructure::kSequentialTasks ? "ST" : "BoT")
         << ',' << job.arrival_s << ',' << task.index_in_job << ','
         << task.length_s << ',' << task.memory_mb << ',' << task.input_size
         << ',' << task.priority << ',' << task.priority_change_time << ','
         << task.new_priority << ',';
      for (std::size_t i = 0; i < task.failure_dates.size(); ++i) {
        if (i > 0) os << ';';
        os << task.failure_dates[i];
      }
      os << '\n';
    }
  }
  if (!os) throw std::runtime_error("write_csv: stream failure");
}

void write_csv_file(const std::string& path, const Trace& trace) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("write_csv_file: cannot open " + path);
  write_csv(os, trace);
}

Trace read_csv(std::istream& is) {
  csv::LineReader reader(is);
  std::string line;
  if (!reader.next(line) || line != kHeader) {
    throw std::runtime_error("read_csv: missing or unexpected header");
  }

  Trace trace;
  // jobs keyed by id; tasks appended in row order.
  std::map<std::uint64_t, std::size_t> job_index;

  while (reader.next(line)) {
    if (csv::is_blank(line)) continue;  // incl. trailing blank lines
    const std::size_t lineno = reader.line_number();
    if (line[0] == '#') {
      const auto pos = line.find("horizon_s=");
      if (pos != std::string::npos) {
        trace.horizon_s =
            csv::parse_double(kLabel, line.substr(pos + 10), lineno);
      }
      continue;
    }
    const auto fields = csv::split(line, ',');
    if (fields.size() != 11) {
      throw csv::field_error(kLabel, lineno,
                             "expected 11 fields, got " +
                                 std::to_string(fields.size()) + " in",
                             line);
    }

    const std::uint64_t job_id = csv::parse_u64(kLabel, fields[0], lineno);
    auto [it, inserted] = job_index.try_emplace(job_id, trace.jobs.size());
    if (inserted) {
      JobRecord job;
      job.id = job_id;
      if (fields[1] == "ST") {
        job.structure = JobStructure::kSequentialTasks;
      } else if (fields[1] == "BoT") {
        job.structure = JobStructure::kBagOfTasks;
      } else {
        throw csv::field_error(kLabel, lineno, "bad structure", fields[1]);
      }
      job.arrival_s = csv::parse_double(kLabel, fields[2], lineno);
      trace.jobs.push_back(std::move(job));
    }

    TaskRecord task;
    task.job_id = job_id;
    task.index_in_job =
        static_cast<std::uint32_t>(csv::parse_u64(kLabel, fields[3], lineno));
    task.length_s = csv::parse_double(kLabel, fields[4], lineno);
    task.memory_mb = csv::parse_double(kLabel, fields[5], lineno);
    task.input_size = csv::parse_double(kLabel, fields[6], lineno);
    task.priority = csv::parse_int(kLabel, fields[7], lineno);
    task.priority_change_time = csv::parse_double(kLabel, fields[8], lineno);
    task.new_priority = csv::parse_int(kLabel, fields[9], lineno);
    if (!fields[10].empty()) {
      for (const auto& d : csv::split(fields[10], ';')) {
        if (!d.empty()) {
          task.failure_dates.push_back(csv::parse_double(kLabel, d, lineno));
        }
      }
      // Strictly increasing, as TaskRecord documents: a duplicate date
      // would fire a spurious zero-delta second kill in the simulator.
      if (std::adjacent_find(task.failure_dates.begin(),
                             task.failure_dates.end(),
                             [](double a, double b) { return a >= b; }) !=
          task.failure_dates.end()) {
        throw csv::field_error(kLabel, lineno,
                               "failure dates not strictly increasing",
                               fields[10]);
      }
    }
    trace.jobs[it->second].tasks.push_back(std::move(task));
  }
  return trace;
}

Trace read_csv_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("read_csv_file: cannot open " + path);
  return read_csv(is);
}

}  // namespace cloudcr::trace
