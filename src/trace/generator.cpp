#include "trace/generator.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace cloudcr::trace {

TraceGenerator::TraceGenerator(GeneratorConfig config,
                               FailureModel failure_model)
    : config_(config),
      workload_(config.workload),
      failure_model_(std::move(failure_model)) {
  if (config_.arrival_rate <= 0.0) {
    throw std::invalid_argument("TraceGenerator: arrival_rate must be > 0");
  }
  if (config_.horizon_s <= 0.0) {
    throw std::invalid_argument("TraceGenerator: horizon must be > 0");
  }
}

TraceGenerator::TraceGenerator(GeneratorConfig config)
    : TraceGenerator(config, FailureModel::google_calibration()) {}

void TraceGenerator::attach_failures(TaskRecord& task, stats::Rng& rng) const {
  if (config_.priority_change_midway) {
    task.priority_change_time = 0.5 * task.length_s;
    // Redraw until the new priority differs, so the change is observable.
    int np = workload_.sample_priority(rng);
    for (int tries = 0; np == task.priority && tries < 16; ++tries) {
      np = workload_.sample_priority(rng);
    }
    task.new_priority = np;
    task.failure_dates = failure_model_.sample_failure_dates_with_change(
        task.priority, task.new_priority, task.priority_change_time, rng);
  } else {
    task.failure_dates =
        failure_model_.sample_failure_dates(task.priority, rng);
  }
}

std::optional<JobRecord> TraceGenerator::Cursor::next() {
  if (done_) return std::nullopt;
  const GeneratorConfig& config = generator_->config_;
  for (;;) {
    t_ += -std::log1p(-rng_.uniform()) / config.arrival_rate;
    if (t_ > config.horizon_s) break;
    if (config.max_jobs != 0 && emitted_ >= config.max_jobs) break;

    JobRecord job = generator_->workload_.sample_job(rng_);
    job.arrival_s = t_;
    for (auto& task : job.tasks) generator_->attach_failures(task, rng_);

    if (config.sample_job_filter) {
      const std::size_t failed = job.failed_task_count();
      if (2 * failed < job.tasks.size()) continue;  // < half the tasks failed
    }

    job.id = next_job_id_++;
    for (auto& task : job.tasks) task.job_id = job.id;
    ++emitted_;
    return job;
  }
  done_ = true;
  return std::nullopt;
}

Trace TraceGenerator::generate() const {
  Trace trace;
  trace.horizon_s = config_.horizon_s;
  Cursor cursor = stream();
  while (auto job = cursor.next()) {
    trace.jobs.push_back(std::move(*job));
  }
  return trace;
}

}  // namespace cloudcr::trace
