#pragma once

/// \file estimators.hpp
/// \brief Historical MNOF/MTBF estimation from traces (paper Table 7) and
/// interval extraction for the CDF figures (Figs 4-5).
///
/// MNOF (mean number of failures per task) and MTBF (mean time between
/// failures) are the two statistics the competing formulas consume: the
/// paper's Formula (3) needs MNOF, Young's formula needs MTBF. Both are
/// estimated from history, grouped by priority and optionally restricted to
/// tasks below a length limit — reproducing the exact structure of Table 7.

#include <array>
#include <limits>
#include <map>
#include <vector>

#include "trace/records.hpp"

namespace cloudcr::trace {

/// Group statistics for one (priority, length-limit) cell of Table 7.
struct GroupStats {
  std::size_t task_count = 0;     ///< tasks in the group
  std::size_t failure_count = 0;  ///< total failures across the group
  double mnof = 0.0;              ///< mean failures per task
  double mtbf = 0.0;              ///< mean uninterrupted interval (s)

  [[nodiscard]] bool empty() const noexcept { return task_count == 0; }
};

/// No length restriction (the Table 7 "<= +inf" rows).
inline constexpr double kNoLengthLimit =
    std::numeric_limits<double>::infinity();

/// Estimates MNOF/MTBF for every priority over tasks with
/// `length_s <= length_limit`.
///
/// A task's failure count is the number of kill events within its own
/// productive length; its observed uninterrupted intervals are the gaps
/// between consecutive kills plus the trailing censored interval (a task
/// that never fails contributes its full length as one interval). This is
/// how a trace consumer would measure both statistics from history, and it
/// reproduces the paper's observation that MTBF inflates with the length
/// limit while MNOF stays comparatively stable.
std::array<GroupStats, kMaxPriority> estimate_by_priority(
    const Trace& trace, double length_limit = kNoLengthLimit);

/// Aggregate of estimate_by_priority over all priorities.
GroupStats estimate_overall(const Trace& trace,
                            double length_limit = kNoLengthLimit);

/// Filter for the per-structure breakdown of Table 7.
enum class StructureFilter { kAll, kSequentialOnly, kBagOfTasksOnly };

/// Per-priority estimation restricted to one job structure.
std::array<GroupStats, kMaxPriority> estimate_by_priority(
    const Trace& trace, double length_limit, StructureFilter filter);

/// All uninterrupted work intervals observed per priority (Fig 4's CDFs).
std::map<int, std::vector<double>> intervals_by_priority(const Trace& trace);

/// All failure intervals (gaps between consecutive failures only, no
/// censored tails) across the whole trace. Intervals larger than `limit`
/// are dropped when a finite limit is given.
std::vector<double> failure_intervals(const Trace& trace,
                                      double limit = kNoLengthLimit);

/// All *uninterrupted work intervals* pooled over every task: gaps between
/// consecutive failures plus each task's trailing censored interval. This is
/// the Fig 5 sample set ("task failure intervals"): the bulk is short burst
/// gaps, the tail is the full length of tasks that never fail — which is why
/// a Pareto fits the whole set while an exponential wins the <=1000 s
/// window. Intervals above `limit` are dropped when a finite limit is given.
std::vector<double> uninterrupted_interval_pool(
    const Trace& trace, double limit = kNoLengthLimit);

/// Per-task expected-failure oracle: the realized number of failures within
/// the task's own productive length. Used by the "precise prediction"
/// experiments (Table 6), where both formulas receive exact per-task values.
double oracle_mnof(const TaskRecord& task);

/// Per-task MTBF oracle: mean observed uninterrupted interval of this task.
double oracle_mtbf(const TaskRecord& task);

}  // namespace cloudcr::trace
