#include "trace/estimators.hpp"

#include <stdexcept>

namespace cloudcr::trace {

namespace {

bool structure_matches(const JobRecord& job, StructureFilter filter) {
  switch (filter) {
    case StructureFilter::kAll:
      return true;
    case StructureFilter::kSequentialOnly:
      return job.structure == JobStructure::kSequentialTasks;
    case StructureFilter::kBagOfTasksOnly:
      return job.structure == JobStructure::kBagOfTasks;
  }
  return false;
}

}  // namespace

std::array<GroupStats, kMaxPriority> estimate_by_priority(
    const Trace& trace, double length_limit, StructureFilter filter) {
  std::array<GroupStats, kMaxPriority> groups{};
  std::array<double, kMaxPriority> interval_sum{};
  std::array<std::size_t, kMaxPriority> interval_count{};

  for (const auto& job : trace.jobs) {
    if (!structure_matches(job, filter)) continue;
    for (const auto& task : job.tasks) {
      if (task.length_s > length_limit) continue;
      const auto idx = static_cast<std::size_t>(task.priority - 1);
      if (idx >= groups.size()) {
        throw std::out_of_range("estimate_by_priority: bad priority");
      }
      GroupStats& g = groups[idx];
      ++g.task_count;
      g.failure_count += task.failures_within(task.length_s);
      for (double interval : task.uninterrupted_intervals(task.length_s)) {
        interval_sum[idx] += interval;
        ++interval_count[idx];
      }
    }
  }

  for (std::size_t i = 0; i < groups.size(); ++i) {
    GroupStats& g = groups[i];
    if (g.task_count > 0) {
      g.mnof = static_cast<double>(g.failure_count) /
               static_cast<double>(g.task_count);
    }
    if (interval_count[i] > 0) {
      g.mtbf = interval_sum[i] / static_cast<double>(interval_count[i]);
    }
  }
  return groups;
}

std::array<GroupStats, kMaxPriority> estimate_by_priority(
    const Trace& trace, double length_limit) {
  return estimate_by_priority(trace, length_limit, StructureFilter::kAll);
}

GroupStats estimate_overall(const Trace& trace, double length_limit) {
  const auto groups = estimate_by_priority(trace, length_limit);
  GroupStats all;
  double weighted_mtbf = 0.0;
  std::size_t mtbf_tasks = 0;
  for (const auto& g : groups) {
    all.task_count += g.task_count;
    all.failure_count += g.failure_count;
    weighted_mtbf += g.mtbf * static_cast<double>(g.task_count);
    if (g.task_count > 0) mtbf_tasks += g.task_count;
  }
  if (all.task_count > 0) {
    all.mnof = static_cast<double>(all.failure_count) /
               static_cast<double>(all.task_count);
  }
  if (mtbf_tasks > 0) {
    all.mtbf = weighted_mtbf / static_cast<double>(mtbf_tasks);
  }
  return all;
}

std::map<int, std::vector<double>> intervals_by_priority(const Trace& trace) {
  std::map<int, std::vector<double>> out;
  for (const auto& job : trace.jobs) {
    for (const auto& task : job.tasks) {
      auto& bucket = out[task.priority];
      for (double v : task.uninterrupted_intervals(task.length_s)) {
        bucket.push_back(v);
      }
    }
  }
  return out;
}

std::vector<double> failure_intervals(const Trace& trace, double limit) {
  std::vector<double> out;
  for (const auto& job : trace.jobs) {
    for (const auto& task : job.tasks) {
      double prev = 0.0;
      for (double date : task.failure_dates) {
        if (date > task.length_s) break;
        const double gap = date - prev;
        prev = date;
        if (gap <= limit) out.push_back(gap);
      }
    }
  }
  return out;
}

std::vector<double> uninterrupted_interval_pool(const Trace& trace,
                                                double limit) {
  std::vector<double> out;
  for (const auto& job : trace.jobs) {
    for (const auto& task : job.tasks) {
      for (double v : task.uninterrupted_intervals(task.length_s)) {
        if (v <= limit) out.push_back(v);
      }
    }
  }
  return out;
}

double oracle_mnof(const TaskRecord& task) {
  return static_cast<double>(task.failures_within(task.length_s));
}

double oracle_mtbf(const TaskRecord& task) {
  const auto intervals = task.uninterrupted_intervals(task.length_s);
  if (intervals.empty()) return task.length_s;
  double acc = 0.0;
  for (double v : intervals) acc += v;
  return acc / static_cast<double>(intervals.size());
}

}  // namespace cloudcr::trace
