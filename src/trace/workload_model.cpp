#include "trace/workload_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/distributions.hpp"

namespace cloudcr::trace {

WorkloadModel::WorkloadModel(WorkloadConfig config) : config_(config) {
  if (config_.bot_fraction < 0.0 || config_.bot_fraction > 1.0) {
    throw std::invalid_argument("WorkloadModel: bot_fraction out of [0,1]");
  }
  if (config_.max_tasks_per_job < 2) {
    throw std::invalid_argument("WorkloadModel: max_tasks_per_job < 2");
  }
  if (config_.long_service_fraction < 0.0 ||
      config_.long_service_fraction > 1.0) {
    throw std::invalid_argument(
        "WorkloadModel: long_service_fraction out of [0,1]");
  }
  if (config_.long_service_fraction > 0.0 &&
      !(config_.service_min_s > 0.0 &&
        config_.service_min_s < config_.service_max_s)) {
    throw std::invalid_argument("WorkloadModel: bad service length range");
  }
  length_dist_ = std::make_unique<stats::Truncated>(
      std::make_unique<stats::LogNormal>(config_.length_log_mu,
                                         config_.length_log_sigma),
      config_.min_length_s, config_.max_length_s);
  memory_dist_ = std::make_unique<stats::Truncated>(
      std::make_unique<stats::LogNormal>(config_.memory_log_mu,
                                         config_.memory_log_sigma),
      config_.min_memory_mb, config_.max_memory_mb);

  double total = 0.0;
  for (double w : config_.priority_weights) {
    if (w < 0.0) {
      throw std::invalid_argument("WorkloadModel: negative priority weight");
    }
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("WorkloadModel: all priority weights zero");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < priority_cdf_.size(); ++i) {
    acc += config_.priority_weights[i] / total;
    priority_cdf_[i] = acc;
  }
  priority_cdf_.back() = 1.0;
}

int WorkloadModel::sample_priority(stats::Rng& rng) const {
  const double u = rng.uniform();
  for (std::size_t i = 0; i < priority_cdf_.size(); ++i) {
    if (u <= priority_cdf_[i]) return static_cast<int>(i) + 1;
  }
  return kMaxPriority;
}

TaskRecord WorkloadModel::sample_task(JobStructure structure,
                                      stats::Rng& rng) const {
  TaskRecord t;
  if (rng.bernoulli(config_.long_service_fraction)) {
    // Long-running service: log-uniform over [service_min, service_max].
    const double lo = std::log(config_.service_min_s);
    const double hi = std::log(config_.service_max_s);
    t.length_s = std::exp(rng.uniform(lo, hi));
  } else {
    t.length_s = length_dist_->sample(rng);
  }
  double mem = memory_dist_->sample(rng);
  if (structure == JobStructure::kBagOfTasks) {
    mem = std::max(config_.min_memory_mb, mem * config_.bot_memory_scale);
  }
  t.memory_mb = std::min(mem, config_.max_memory_mb);
  t.priority = sample_priority(rng);
  // Input-parameter size visible to the job parser: a noisy monotone
  // transform of the true length (length ~ input^{4/3} up to ~15% noise),
  // giving regression-based workload prediction realistic signal.
  t.input_size = std::pow(t.length_s, 0.75) *
                 std::exp(0.15 * rng.normal());
  return t;
}

JobRecord WorkloadModel::sample_job(stats::Rng& rng) const {
  JobRecord job;
  job.structure = rng.bernoulli(config_.bot_fraction)
                      ? JobStructure::kBagOfTasks
                      : JobStructure::kSequentialTasks;

  // Task count: 1 + Geom (ST) or 2 + Geom (BoT), capped.
  const bool bot = job.structure == JobStructure::kBagOfTasks;
  const double p = bot ? config_.bot_extra_task_p : config_.st_extra_task_p;
  std::size_t n = bot ? 2 : 1;
  while (!rng.bernoulli(p) && n < config_.max_tasks_per_job) ++n;

  // All tasks of a job share one priority (Google jobs are scheduled with a
  // per-job priority); per-task fields are sampled independently.
  const int priority = sample_priority(rng);
  job.tasks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    TaskRecord t = sample_task(job.structure, rng);
    t.priority = priority;
    t.index_in_job = static_cast<std::uint32_t>(i);
    job.tasks.push_back(std::move(t));
  }
  return job;
}

}  // namespace cloudcr::trace
