#pragma once

/// \file workload_model.hpp
/// \brief Job/task workload synthesis matching the marginals of Fig 8.
///
/// The paper's experimental jobs come from the Google one-month trace: most
/// jobs are short (hundreds of seconds) with small memory footprints, job
/// structures split between sequential-task (ST) chains and bag-of-tasks
/// (BoT) fan-outs, and task priorities span 1..12 with most mass at the low
/// end. This module synthesizes jobs with those marginals.

#include <array>
#include <memory>

#include "stats/distribution.hpp"
#include "stats/rng.hpp"
#include "trace/records.hpp"

namespace cloudcr::trace {

/// Tunable workload synthesis parameters; defaults reproduce Fig 8's shape.
struct WorkloadConfig {
  /// Fraction of jobs that are bag-of-tasks (rest are sequential-task).
  double bot_fraction = 0.5;

  /// Task length (s): lognormal bulk truncated to [min,max]. The defaults
  /// put the median near 420 s — "majority of jobs in Google data centers
  /// are quite short (200-1000 seconds)".
  double length_log_mu = 6.04;     // ln(420)
  double length_log_sigma = 0.95;
  double min_length_s = 30.0;
  double max_length_s = 21600.0;   // 6 h, the Fig 8(b) x-range

  /// Task memory (MB): lognormal truncated to [min,max]; VMs hold 1 GB so
  /// memory is capped below that. ST tasks tend to be bigger than BoT tasks
  /// in Fig 8(a); `bot_memory_scale` shrinks BoT footprints.
  double memory_log_mu = 4.38;     // ln(80)
  double memory_log_sigma = 0.80;
  double min_memory_mb = 10.0;
  double max_memory_mb = 960.0;
  double bot_memory_scale = 0.6;

  /// Task counts: ST jobs run 1 + Geometric(st_extra_p) tasks (capped), BoT
  /// jobs run 2 + Geometric(bot_extra_p) tasks (capped).
  double st_extra_task_p = 0.55;
  double bot_extra_task_p = 0.35;
  std::size_t max_tasks_per_job = 48;

  /// Priority mass for priorities 1..12; normalized internally. Defaults
  /// follow the Google trace's skew toward low priorities, with priorities
  /// 4, 8, 11, 12 rare (the paper reports no results for them).
  std::array<double, kMaxPriority> priority_weights = {
      0.22, 0.18, 0.10, 0.01, 0.08, 0.08, 0.08, 0.01, 0.09, 0.10, 0.03, 0.02};

  /// Fraction of tasks that are long-running services, with log-uniform
  /// lengths in [service_min_s, service_max_s]. The Google trace contains
  /// such day/week-scale tasks; their enormous uninterrupted intervals are
  /// what blows up unrestricted MTBF estimates in Table 7 while leaving MNOF
  /// almost untouched (kill bursts saturate regardless of length).
  double long_service_fraction = 0.03;
  double service_min_s = 86400.0;     // 1 day
  double service_max_s = 2592000.0;   // 30 days (the Fig 4(b) x-range)
};

/// Samples job skeletons (structure, tasks, lengths, memory, priorities) —
/// failure events are attached separately by the TraceGenerator.
class WorkloadModel {
 public:
  explicit WorkloadModel(WorkloadConfig config = {});

  [[nodiscard]] const WorkloadConfig& config() const noexcept {
    return config_;
  }

  /// Samples one job without arrival time or failure dates.
  [[nodiscard]] JobRecord sample_job(stats::Rng& rng) const;

  /// Samples a single task record (no job linkage, no failures).
  [[nodiscard]] TaskRecord sample_task(JobStructure structure,
                                       stats::Rng& rng) const;

  /// Samples a priority from the configured weights.
  [[nodiscard]] int sample_priority(stats::Rng& rng) const;

 private:
  WorkloadConfig config_;
  stats::DistributionPtr length_dist_;
  stats::DistributionPtr memory_dist_;
  std::array<double, kMaxPriority> priority_cdf_{};
};

}  // namespace cloudcr::trace
