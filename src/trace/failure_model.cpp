#include "trace/failure_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/special.hpp"

namespace cloudcr::trace {

namespace {

void require_priority(int priority) {
  if (priority < kMinPriority || priority > kMaxPriority) {
    throw std::out_of_range("FailureModel: priority must be in [1, 12]");
  }
}

}  // namespace

FailureModel::FailureModel(
    std::array<PriorityProfile, kMaxPriority> profiles) noexcept
    : profiles_(profiles) {}

FailureModel FailureModel::google_calibration() {
  // Calibrated so that per-priority MNOF/MTBF estimates reproduce the
  // structure of Table 7: low priorities fail often with short gaps; most
  // high priorities are nearly safe; priority 10 is a pathological class
  // killed every ~40 s (paper: MNOF ~12, MTBF ~37 s); priorities 4, 8, 11,
  // 12 almost never fail (the paper reports no data for them).
  std::array<PriorityProfile, kMaxPriority> p{};
  p[0] = {0.80, 4.2, 140.0};   // priority 1
  p[1] = {0.60, 2.0, 170.0};   // priority 2
  p[2] = {0.50, 2.0, 200.0};   // priority 3
  p[3] = {0.02, 1.0, 300.0};   // priority 4  (nearly safe)
  p[4] = {0.40, 1.5, 250.0};   // priority 5
  p[5] = {0.35, 1.4, 300.0};   // priority 6
  p[6] = {0.30, 1.9, 250.0};   // priority 7
  p[7] = {0.01, 1.0, 400.0};   // priority 8  (nearly safe)
  p[8] = {0.25, 1.3, 350.0};   // priority 9
  p[9] = {0.95, 10.0, 40.0};   // priority 10 (monitoring-style churn)
  p[10] = {0.03, 1.0, 500.0};  // priority 11 (nearly safe)
  p[11] = {0.02, 1.0, 600.0};  // priority 12 (nearly safe)
  return FailureModel(p);
}

const PriorityProfile& FailureModel::profile(int priority) const {
  require_priority(priority);
  return profiles_[static_cast<std::size_t>(priority - 1)];
}

std::vector<double> FailureModel::sample_failure_dates(
    int priority, stats::Rng& rng) const {
  const PriorityProfile& prof = profile(priority);
  std::vector<double> dates;
  if (!rng.bernoulli(prof.p_harassed)) return dates;

  // Burst size N ~ Geometric(1/mean_kills) on {1, 2, ...}.
  const double p_stop = 1.0 / std::max(1.0, prof.mean_kills);
  std::size_t n = 1;
  while (!rng.bernoulli(p_stop) && n < 10000) ++n;

  dates.reserve(n);
  double t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    t += -std::log1p(-rng.uniform()) * prof.mean_gap_s;
    dates.push_back(t);
  }
  return dates;
}

std::vector<double> FailureModel::sample_failure_dates_with_change(
    int old_priority, int new_priority, double change_time,
    stats::Rng& rng) const {
  if (change_time < 0.0) {
    throw std::invalid_argument(
        "sample_failure_dates_with_change: negative change time");
  }
  std::vector<double> dates;
  for (double d : sample_failure_dates(old_priority, rng)) {
    if (d >= change_time) break;
    dates.push_back(d);
  }
  for (double d : sample_failure_dates(new_priority, rng)) {
    dates.push_back(change_time + d);
  }
  return dates;
}

double FailureModel::expected_failures(int priority,
                                       double active_horizon) const {
  const PriorityProfile& prof = profile(priority);
  if (active_horizon <= 0.0 || prof.p_harassed <= 0.0) return 0.0;
  const double rate = 1.0 / prof.mean_gap_s;
  const double p_stop = 1.0 / std::max(1.0, prof.mean_kills);
  // E(Y) = p_harassed * sum_{k>=1} P(N >= k) P(T_k <= horizon)
  //      = p_harassed * sum_{k>=1} (1-p_stop)^(k-1) * ErlangCdf(k).
  double acc = 0.0;
  double survive = 1.0;  // P(N >= k)
  for (int k = 1; k <= 4096; ++k) {
    const double term = survive * stats::erlang_cdf(k, rate, active_horizon);
    acc += term;
    if (term < 1e-12 && k > 8) break;
    survive *= (1.0 - p_stop);
    if (survive < 1e-14) break;
  }
  return prof.p_harassed * acc;
}

}  // namespace cloudcr::trace
