#!/usr/bin/env python3
"""Check that intra-repo markdown links resolve.

Scans the repo's *.md files (skipping build trees) and verifies that every
relative link target exists, and that every ``#anchor`` fragment — in
same-file links (``#section``) and cross-file links
(``PAPERS.md#source-paper-canonical-citation``) — matches a heading or an
explicit HTML anchor of the target document. Anchors follow GitHub's
slugging rules, including the ``-1``/``-2`` suffixes that deduplicate
repeated headings. External links (http/https/mailto) are not fetched —
this is the CI docs job's offline gate, not a crawler.

Exit status: 0 when every link resolves, 1 otherwise (one line per broken
link: ``file:line: broken link 'target' (reason)``).
"""

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
HTML_ANCHOR_RE = re.compile(r"<[^>]*\b(?:id|name)=[\"']([^\"']+)[\"']")
SKIP_DIRS = {"build", "build-debug", "build-asan", ".git", "_deps"}
EXTERNAL = ("http://", "https://", "mailto:")


def slugify(heading: str) -> str:
    """GitHub-style anchor slug: lowercase, spaces to dashes, drop
    punctuation (backticks, parens, ...)."""
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def headings_of(path: Path) -> set:
    """Anchors the document exposes: slugs of its headings (repeated
    headings get GitHub's ``-N`` suffixes) plus explicit ``id=``/``name=``
    HTML anchors."""
    slugs = set()
    counts = {}
    in_code = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("```"):
            in_code = not in_code
            continue
        if in_code:
            continue
        for m in HTML_ANCHOR_RE.finditer(line):
            slugs.add(m.group(1))
        m = HEADING_RE.match(line)
        if m:
            slug = slugify(m.group(1))
            seen = counts.get(slug, 0)
            counts[slug] = seen + 1
            slugs.add(slug if seen == 0 else f"{slug}-{seen}")
    return slugs


def anchor_resolves(fragment: str, anchors: set) -> bool:
    """Heading anchors match after slugging; explicit ``id=``/``name=``
    anchors match verbatim (GitHub resolves those case-sensitively, without
    slugging)."""
    return fragment in anchors or slugify(fragment) in anchors


def md_files(root: Path):
    for path in sorted(root.rglob("*.md")):
        if any(part in SKIP_DIRS for part in path.parts):
            continue
        yield path


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
    root = root.resolve()
    errors = []
    checked = 0
    heading_cache = {}

    def headings(path: Path) -> set:
        if path not in heading_cache:
            heading_cache[path] = headings_of(path)
        return heading_cache[path]

    for md in md_files(root):
        in_code = False
        for lineno, line in enumerate(
            md.read_text(encoding="utf-8").splitlines(), start=1
        ):
            if line.lstrip().startswith("```"):
                in_code = not in_code
                continue
            if in_code:
                continue
            for match in LINK_RE.finditer(line):
                target = match.group(1)
                if target.startswith(EXTERNAL):
                    continue
                checked += 1
                if target.startswith("#"):
                    if not anchor_resolves(target[1:], headings(md)):
                        errors.append(
                            f"{md.relative_to(root)}:{lineno}: broken link "
                            f"'{target}' (no such heading)"
                        )
                    continue
                file_part, _, fragment = target.partition("#")
                dest = (md.parent / file_part).resolve()
                if not dest.exists():
                    errors.append(
                        f"{md.relative_to(root)}:{lineno}: broken link "
                        f"'{target}' (no such file)"
                    )
                    continue
                if fragment and dest.suffix == ".md":
                    if not anchor_resolves(fragment, headings(dest)):
                        errors.append(
                            f"{md.relative_to(root)}:{lineno}: broken link "
                            f"'{target}' (no such heading in "
                            f"{dest.relative_to(root)})"
                        )

    for err in errors:
        print(err)
    print(
        f"checked {checked} intra-repo links, {len(errors)} broken",
        file=sys.stderr,
    )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
