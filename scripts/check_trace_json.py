#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON artifact written by obs::TraceWriter.

Loads the file, checks the envelope (``traceEvents`` array plus the
writer's ``otherData.dropped_events`` accounting field), and validates
every event:

* only the phases the writer emits (``X`` complete spans, ``I`` instants,
  ``M`` metadata), with the fields each phase requires;
* categories drawn from the writer's fixed set (phase/job/task/vm) on
  non-metadata events;
* finite non-negative ``ts`` and ``dur`` (microseconds; host-clock events
  carry sub-microsecond fractions);
* instants carry thread scope (``"s": "t"``);
* events stamped at their emission time are non-decreasing in array
  order: every host-clock event, and simulated-clock *instants* (stamped
  at the engine's current time). Simulated spans are exempt — compressed
  checkpoint runs retro-emit historical ``run``/``ckpt`` sub-spans when a
  phase completes, and parallel tasks of a bag-of-tasks job overlap on
  the job's track by design, so neither ordering nor nesting is an
  invariant for them.

This is what CI runs against the instrumented replay artifact; the unit
tests in tests/obs/trace_writer_test.cpp pin the same invariants on
hand-built writers.

Exit status: 0 when the trace validates (a one-line summary is printed),
1 on any violation (one line per problem), 2 on unreadable input.
"""

import json
import math
import sys
from pathlib import Path

PHASES = {"X", "I", "M"}
CATEGORIES = {"phase", "job", "task", "vm"}
METADATA_NAMES = {"process_name", "thread_name"}
HOST_PID = 1


def microseconds(value: object) -> bool:
    """A timestamp or duration: finite, non-negative, numeric."""
    return (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and math.isfinite(value)
        and value >= 0
    )


def validate_event(index: int, event: object, errors: list) -> dict | None:
    """Checks one traceEvents entry; returns it when well-formed."""

    def bad(reason: str) -> None:
        errors.append(f"traceEvents[{index}]: {reason}")

    if not isinstance(event, dict):
        bad("not an object")
        return None
    phase = event.get("ph")
    if phase not in PHASES:
        bad(f"unexpected ph {phase!r} (writer emits X, I, M)")
        return None
    for field in ("name", "pid", "tid"):
        if field not in event:
            bad(f"missing {field!r}")
            return None
    if not isinstance(event["name"], str):
        bad("name is not a string")
        return None

    if phase == "M":
        if event["name"] not in METADATA_NAMES:
            bad(f"unknown metadata record {event['name']!r}")
        return event

    if event.get("cat") not in CATEGORIES:
        bad(f"unexpected cat {event.get('cat')!r}")
        return None
    if not microseconds(event.get("ts")):
        bad(f"ts must be a finite non-negative number, got {event.get('ts')!r}")
        return None
    if phase == "X":
        if not microseconds(event.get("dur")):
            bad(f"dur must be a finite non-negative number, "
                f"got {event.get('dur')!r}")
            return None
    elif phase == "I":
        if event.get("s") != "t":
            bad(f"instant must carry thread scope, got s={event.get('s')!r}")
            return None
    return event


def validate_order(events: list, errors: list) -> int:
    """Emission-stamped events never step backwards within a clock domain.

    Returns the number of distinct (pid, tid) tracks seen.
    """
    last_stamp = {}  # clock domain -> latest emission stamp seen
    tracks = set()
    for index, event in enumerate(events):
        if event["ph"] == "M":
            continue
        tracks.add((event["pid"], event["tid"]))
        domain = "host" if event["pid"] == HOST_PID else "sim"
        if domain == "sim" and event["ph"] == "X":
            continue  # retro-emitted sub-spans carry historical times
        stamp = event["ts"] + event.get("dur", 0)
        if stamp < last_stamp.get(domain, 0):
            errors.append(
                f"traceEvents[{index}]: {domain}-clock event "
                f"{event['name']!r} stamped {stamp}, before the previously "
                f"emitted {last_stamp[domain]} — emission order regressed"
            )
        else:
            last_stamp[domain] = stamp
    return len(tracks)


def main(argv: list) -> int:
    if len(argv) != 2:
        print(f"usage: {argv[0]} TRACE.json", file=sys.stderr)
        return 2
    path = Path(argv[1])
    try:
        document = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        print(f"{path}: unreadable: {error}", file=sys.stderr)
        return 2

    errors = []
    if not isinstance(document, dict):
        errors.append("top level is not an object")
    events_raw = document.get("traceEvents") if isinstance(document, dict) else None
    if not isinstance(events_raw, list):
        errors.append("missing traceEvents array")
        events_raw = []
    other = document.get("otherData") if isinstance(document, dict) else None
    dropped = other.get("dropped_events") if isinstance(other, dict) else None
    if not isinstance(dropped, int) or isinstance(dropped, bool) or dropped < 0:
        errors.append(
            "otherData.dropped_events must be a non-negative integer, "
            f"got {dropped!r}"
        )
        dropped = 0

    events = []
    for index, raw in enumerate(events_raw):
        event = validate_event(index, raw, errors)
        if event is not None:
            events.append(event)
    tracks = validate_order(events, errors)

    if errors:
        for line in errors:
            print(f"{path}: {line}")
        return 1
    spans = sum(1 for e in events if e["ph"] == "X")
    instants = sum(1 for e in events if e["ph"] == "I")
    print(
        f"{path}: OK — {spans} spans, {instants} instants across "
        f"{tracks} tracks ({dropped} ring-evicted)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
