// The experiment registry: structural invariants (unique sorted ids,
// complete descriptions, registry-valid scenario specs), agreement with the
// checked-in expected-value document, and an end-to-end run of the cheap
// model-only entries through the report runner.

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "api/registry.hpp"
#include "api/scenario.hpp"
#include "report/compare.hpp"
#include "report/registry.hpp"
#include "report/render.hpp"
#include "report/runner.hpp"
#include "sched/registry.hpp"

namespace cloudcr {
namespace {

const report::ExperimentRegistry& registry() {
  return report::ExperimentRegistry::instance();
}

TEST(ExperimentRegistry, IdsAreUniqueSortedAndFindable) {
  const auto ids = registry().ids();
  ASSERT_FALSE(ids.empty());
  std::set<std::string> seen;
  for (const auto& id : ids) {
    EXPECT_TRUE(seen.insert(id).second) << "duplicate id " << id;
    const auto* e = registry().find(id);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->id, id);
  }
  for (std::size_t i = 1; i < ids.size(); ++i) {
    EXPECT_LT(ids[i - 1], ids[i]) << "ids not in paper order";
  }
  EXPECT_EQ(registry().find("no_such_experiment"), nullptr);
}

TEST(ExperimentRegistry, CoversThePaperMatrix) {
  // The paper's reproduced figures and tables, one entry each, plus the
  // repo's scheduling-stage extension entries.
  for (const char* id :
       {"fig04", "fig05", "fig07", "fig08", "fig09", "fig10", "fig11",
        "fig12", "fig13", "fig14", "sched01", "sched02", "tab02", "tab03",
        "tab04", "tab05", "tab06", "tab07"}) {
    EXPECT_NE(registry().find(id), nullptr) << "missing entry " << id;
  }
  EXPECT_EQ(registry().entries().size(), 18u);
}

TEST(ExperimentRegistry, EntriesAreSelfDescribing) {
  for (const auto& e : registry().entries()) {
    EXPECT_FALSE(e.title.empty()) << e.id;
    EXPECT_FALSE(e.paper_ref.empty()) << e.id;
    EXPECT_FALSE(e.paper_claim.empty()) << e.id;
    EXPECT_FALSE(e.model_notes.empty()) << e.id;
    EXPECT_TRUE(static_cast<bool>(e.evaluate)) << e.id;
    // Every entry consumes *something*: scenarios or raw traces, except the
    // pure cost-model tables which consume neither but must then be fast.
    if (e.specs.empty() && e.traces.empty()) {
      EXPECT_TRUE(e.fast) << e.id << " runs nothing yet is not fast";
    }
  }
}

TEST(ExperimentRegistry, ScenarioSpecsAreValidAndRoundTrip) {
  const auto& policies = api::PolicyRegistry::instance();
  const auto& predictors = api::PredictorRegistry::instance();
  const auto& schedulers = sched::SchedulerRegistry::instance();
  std::set<std::string> names;
  for (const auto& e : registry().entries()) {
    for (const auto& spec : e.specs) {
      EXPECT_TRUE(names.insert(spec.name).second)
          << "duplicate scenario name " << spec.name;
      // Registry keys resolve (split off any :arg).
      EXPECT_TRUE(policies.contains(api::split_key(spec.policy).name))
          << spec.name << " policy " << spec.policy;
      EXPECT_TRUE(predictors.contains(api::split_key(spec.predictor).name))
          << spec.name << " predictor " << spec.predictor;
      EXPECT_TRUE(schedulers.contains(api::split_key(spec.sched).name))
          << spec.name << " sched " << spec.sched;
      // Specs are serializable (artifacts must be self-reproducing).
      EXPECT_EQ(api::parse_scenario(api::serialize(spec)), spec)
          << spec.name;
    }
  }
}

TEST(ExperimentRegistry, FastSubsetIsNonTrivial) {
  report::ReportOptions options;
  options.fast_only = true;
  const auto fast = report::select_experiments(options);
  EXPECT_GE(fast.size(), 5u);
  for (const auto* e : fast) EXPECT_TRUE(e->fast);
}

TEST(ExperimentRegistry, SelectRejectsUnknownIds) {
  report::ReportOptions options;
  options.only = {"fig09", "bogus"};
  EXPECT_THROW(report::select_experiments(options), std::invalid_argument);
}

TEST(ExperimentRegistry, ExperimentsDocListsEveryEntry) {
  std::ostringstream os;
  report::write_experiments_doc(os);
  const auto doc = os.str();
  for (const auto& e : registry().entries()) {
    EXPECT_NE(doc.find("## " + e.id), std::string::npos)
        << "docs drift: missing section for " << e.id;
  }
}

#ifdef CLOUDCR_REPRO_EXPECTED_PATH
TEST(ExperimentRegistry, CheckedInExpectationsCoverEveryEntry) {
  // The expected-value document and the registry must not drift: an entry
  // without expectations silently escapes the gate, and an expectation for
  // a removed entry means the gate checks nothing.
  const auto doc = report::read_expected_file(CLOUDCR_REPRO_EXPECTED_PATH);
  for (const auto& e : registry().entries()) {
    const auto* expected = doc.find(e.id);
    ASSERT_NE(expected, nullptr) << "no expected values for " << e.id
                                 << " (repro_report --update-expected)";
    EXPECT_FALSE(expected->metrics.empty()) << e.id;
  }
  for (const auto& entry : doc.entries) {
    EXPECT_NE(registry().find(entry.id), nullptr)
        << "expectations for unknown experiment " << entry.id;
  }
}
#endif

TEST(ReportRunner, ModelOnlyEntriesRunAndMatchExpectations) {
  // The storage-model entries are cheap enough for a unit test and cover
  // the full runner path (selection, evaluation, comparison).
  report::ReportOptions options;
  options.only = {"tab04", "tab05"};
  const auto result = report::run_report(options);
  ASSERT_EQ(result.entries.size(), 2u);
  for (const auto& entry : result.entries) {
    EXPECT_FALSE(entry.metrics.empty()) << entry.experiment->id;
    EXPECT_TRUE(entry.artifacts.empty()) << entry.experiment->id;
  }
#ifdef CLOUDCR_REPRO_EXPECTED_PATH
  const auto doc = report::read_expected_file(CLOUDCR_REPRO_EXPECTED_PATH);
  for (const auto& entry : result.entries) {
    const auto* expected = doc.find(entry.experiment->id);
    ASSERT_NE(expected, nullptr);
    const auto comparisons = report::compare_entry(*expected, entry.metrics);
    EXPECT_TRUE(report::all_pass(comparisons)) << entry.experiment->id;
  }
#endif
}

TEST(ReportRunner, EvaluationIsDeterministic) {
  report::ReportOptions options;
  options.only = {"tab02"};
  const auto a = report::run_report(options);
  const auto b = report::run_report(options);
  ASSERT_EQ(a.entries.size(), 1u);
  ASSERT_EQ(b.entries.size(), 1u);
  ASSERT_EQ(a.entries[0].metrics.size(), b.entries[0].metrics.size());
  for (std::size_t i = 0; i < a.entries[0].metrics.size(); ++i) {
    EXPECT_EQ(a.entries[0].metrics[i].name, b.entries[0].metrics[i].name);
    EXPECT_EQ(a.entries[0].metrics[i].value, b.entries[0].metrics[i].value);
  }
}

}  // namespace
}  // namespace cloudcr
