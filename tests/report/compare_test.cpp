// The reproduction expected-value gate: comparator semantics (tolerance
// pass, deviation fail, missing-metric fail, new-metric informational) and
// the expected-document round trip — mirroring the perf-baseline gate
// tests' role for the perf matrix.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "report/compare.hpp"

namespace cloudcr {
namespace {

report::MetricValue actual(const std::string& name, double value,
                           double hint = 0.1) {
  return report::metric(name, value, hint);
}

report::EntryExpectations expectations() {
  report::EntryExpectations e;
  e.id = "figXX";
  // Binary-exact values: the boundary tests below exercise the comparator's
  // inclusive <=, not double rounding.
  e.metrics = {{"avg_wpr", 0.9375, 0.03125}, {"frac_fast", 0.75, 0.0625}};
  return e;
}

TEST(Comparator, WithinToleranceIsPass) {
  const auto cs = report::compare_entry(
      expectations(),
      {actual("avg_wpr", 0.9375 + 0.015625), actual("frac_fast", 0.78125)});
  ASSERT_EQ(cs.size(), 2u);
  EXPECT_EQ(cs[0].status, report::ComparisonStatus::kPass);
  EXPECT_EQ(cs[1].status, report::ComparisonStatus::kPass);
  EXPECT_TRUE(report::all_pass(cs));
}

TEST(Comparator, ToleranceBoundaryIsInclusive) {
  const auto cs =
      report::compare_entry(expectations(), {actual("avg_wpr", 0.96875),
                                             actual("frac_fast", 0.75)});
  EXPECT_EQ(cs[0].status, report::ComparisonStatus::kPass);  // exactly +tol
}

TEST(Comparator, OutsideToleranceIsDeviationAndFailsGate) {
  const auto cs = report::compare_entry(
      expectations(), {actual("avg_wpr", 0.875), actual("frac_fast", 0.75)});
  EXPECT_EQ(cs[0].status, report::ComparisonStatus::kDeviation);
  EXPECT_TRUE(cs[0].fails());
  EXPECT_EQ(cs[1].status, report::ComparisonStatus::kPass);
  EXPECT_FALSE(report::all_pass(cs));
}

TEST(Comparator, ExpectedMetricAbsentFromRunIsMissingAndFailsGate) {
  const auto cs =
      report::compare_entry(expectations(), {actual("avg_wpr", 0.9375)});
  ASSERT_EQ(cs.size(), 2u);
  EXPECT_EQ(cs[1].metric, "frac_fast");
  EXPECT_EQ(cs[1].status, report::ComparisonStatus::kMissing);
  EXPECT_TRUE(cs[1].fails());
  EXPECT_FALSE(report::all_pass(cs));
}

TEST(Comparator, UnexpectedActualIsNewAndDoesNotFail) {
  const auto cs = report::compare_entry(
      expectations(), {actual("avg_wpr", 0.9375), actual("frac_fast", 0.75),
                       actual("brand_new", 1.0)});
  ASSERT_EQ(cs.size(), 3u);
  EXPECT_EQ(cs[2].metric, "brand_new");
  EXPECT_EQ(cs[2].status, report::ComparisonStatus::kNew);
  EXPECT_FALSE(cs[2].fails());
  EXPECT_TRUE(report::all_pass(cs));
}

TEST(Comparator, NanActualIsDeviationNotSilentPass) {
  const auto cs = report::compare_entry(
      expectations(),
      {actual("avg_wpr", std::nan("")), actual("frac_fast", 0.75)});
  EXPECT_EQ(cs[0].status, report::ComparisonStatus::kDeviation);
}

TEST(Comparator, ZeroToleranceRequiresExactMatch) {
  report::EntryExpectations e;
  e.id = "x";
  e.metrics = {{"structural_flag", 1.0, 0.0}};
  EXPECT_TRUE(report::all_pass(
      report::compare_entry(e, {actual("structural_flag", 1.0)})));
  EXPECT_FALSE(report::all_pass(
      report::compare_entry(e, {actual("structural_flag", 0.0)})));
}

// -- expected-document IO ----------------------------------------------------

report::ExpectedDoc sample_doc() {
  report::ExpectedDoc doc;
  doc.entries.push_back(
      {"fig09", {{"avg_wpr", 0.89943741909499431, 0.02}, {"frac", 0.7, 0.05}}});
  doc.entries.push_back({"tab02", {{"cost_x1", 0.632, 0.3}}});
  return doc;
}

TEST(ExpectedDoc, RoundTripsExactly) {
  std::ostringstream os;
  report::write_expected(os, sample_doc());
  const auto parsed = report::parse_expected(os.str());
  ASSERT_EQ(parsed.entries.size(), 2u);
  EXPECT_EQ(parsed.entries[0].id, "fig09");
  ASSERT_EQ(parsed.entries[0].metrics.size(), 2u);
  EXPECT_EQ(parsed.entries[0].metrics[0].metric, "avg_wpr");
  // Bit-exact doubles: the writer uses round-trip precision.
  EXPECT_EQ(parsed.entries[0].metrics[0].value, 0.89943741909499431);
  EXPECT_EQ(parsed.entries[0].metrics[0].tolerance, 0.02);
  EXPECT_EQ(parsed.entries[1].id, "tab02");
  ASSERT_EQ(parsed.entries[1].metrics.size(), 1u);
  EXPECT_EQ(parsed.entries[1].metrics[0].metric, "cost_x1");
}

TEST(ExpectedDoc, FindLocatesEntries) {
  const auto doc = sample_doc();
  ASSERT_NE(doc.find("tab02"), nullptr);
  EXPECT_EQ(doc.find("tab02")->metrics.size(), 1u);
  EXPECT_EQ(doc.find("nope"), nullptr);
}

TEST(ExpectedDoc, SchemaMismatchThrows) {
  EXPECT_THROW(report::parse_expected("{\"schema\":\"something-else/9\"}"),
               std::runtime_error);
  EXPECT_THROW(report::parse_expected("{}"), std::runtime_error);
}

TEST(ExpectedDoc, MetricMissingItsValueThrowsInsteadOfBorrowing) {
  // Hand-editing hazard: if a metric loses its "value" field, the parser
  // must reject the document rather than silently read the next metric's
  // (or next entry's) number.
  std::ostringstream os;
  report::write_expected(os, sample_doc());
  std::string text = os.str();
  const auto pos = text.find(",\"value\":0.89943741909499431");
  ASSERT_NE(pos, std::string::npos);
  text.erase(pos, std::string(",\"value\":0.89943741909499431").size());
  EXPECT_THROW(report::parse_expected(text), std::runtime_error);
}

TEST(ExpectedDoc, MergeReplacesFreshAndKeepsBaseEntries) {
  // A subset --update-expected must refresh the run entries without
  // truncating the rest of the baseline.
  const auto base = sample_doc();  // fig09, tab02
  report::ExpectedDoc fresh;
  fresh.entries.push_back({"tab02", {{"cost_x1", 0.7, 0.3}}});
  fresh.entries.push_back({"zz_new", {{"m", 1.0, 0.0}}});
  const auto merged = report::merge_expected(base, fresh);
  ASSERT_EQ(merged.entries.size(), 3u);
  EXPECT_EQ(merged.entries[0].id, "fig09");  // kept from base, sorted order
  EXPECT_EQ(merged.entries[1].id, "tab02");
  EXPECT_EQ(merged.entries[1].metrics[0].value, 0.7);  // fresh wins
  EXPECT_EQ(merged.entries[2].id, "zz_new");
}

TEST(ExpectedDoc, BuiltFromResultsUsesToleranceHints) {
  std::vector<std::pair<std::string, std::vector<report::MetricValue>>>
      results;
  results.emplace_back(
      "figXX", std::vector<report::MetricValue>{
                   report::metric("m1", 1.5, /*tolerance_hint=*/0.25)});
  const auto doc = report::expected_from_results(results);
  ASSERT_EQ(doc.entries.size(), 1u);
  EXPECT_EQ(doc.entries[0].metrics[0].metric, "m1");
  EXPECT_EQ(doc.entries[0].metrics[0].value, 1.5);
  EXPECT_EQ(doc.entries[0].metrics[0].tolerance, 0.25);
}

}  // namespace
}  // namespace cloudcr
