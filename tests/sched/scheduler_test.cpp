// SchedulerPolicy implementations (EASY / conservative backfill, priority
// preemption), the SchedulerRegistry, and the end-to-end scheduling stage
// inside sim::Simulation (hold times, backfill counts, preemptions, and the
// fcfs == no-scheduler identity).

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "sched/policies.hpp"
#include "sched/registry.hpp"
#include "sim/predictors.hpp"
#include "sim/simulation.hpp"

namespace cloudcr::sched {
namespace {

ResourceView view(double now, double avail, double capacity = 1000.0) {
  ResourceView v;
  v.now_s = now;
  v.total_available_mb = avail;
  v.max_available_mb = avail;
  v.total_capacity_mb = capacity;
  return v;
}

PendingJob pending(std::uint32_t slot, double demand, double estimate,
                   int priority = 5) {
  PendingJob p;
  p.id = slot;
  p.slot = slot;
  p.demand_mb = demand;
  p.estimate_s = estimate;
  p.priority = priority;
  return p;
}

RunningJob running(std::uint32_t slot, double demand, double est_end,
                   int priority = 5) {
  RunningJob r;
  r.id = slot;
  r.slot = slot;
  r.demand_mb = demand;
  r.est_end_s = est_end;
  r.priority = priority;
  return r;
}

TEST(Fcfs, IsPassThroughAndReleasesEverything) {
  const SchedulerPtr fcfs = make_fcfs();
  EXPECT_EQ(fcfs->name(), "fcfs");
  EXPECT_TRUE(fcfs->pass_through());
  EXPECT_EQ(fcfs->preempt_mode(), PreemptMode::kNone);

  Decision out;
  fcfs->decide(view(0.0, 0.0), {pending(0, 500.0, 10.0)}, {}, out);
  ASSERT_EQ(out.release.size(), 1u);
  EXPECT_EQ(out.release[0], 0u);
  EXPECT_TRUE(out.evict.empty());
}

TEST(EasyBackfill, ReleasesHeadsInOrderWhileTheyFit) {
  const SchedulerPtr easy = make_easy_backfill();
  EXPECT_FALSE(easy->pass_through());
  Decision out;
  easy->decide(view(0.0, 100.0),
               {pending(0, 60.0, 10.0), pending(1, 30.0, 10.0),
                pending(2, 30.0, 10.0)},
               {}, out);
  // 60 + 30 fit; the third head (30 > 10 left) blocks.
  ASSERT_EQ(out.release.size(), 2u);
  EXPECT_EQ(out.release[0], 0u);
  EXPECT_EQ(out.release[1], 1u);
}

TEST(EasyBackfill, BackfillsAroundTheShadowReservation) {
  // avail = 20; running r(40 MB) until t=100. Head needs 50 -> shadow 100,
  // extra = 20 + 40 - 50 = 10.
  const SchedulerPtr easy = make_easy_backfill();
  const std::vector<RunningJob> run = {running(9, 40.0, 100.0)};
  const std::vector<PendingJob> queue = {
      pending(0, 50.0, 100.0),  // head: blocked
      pending(1, 5.0, 50.0),    // ends at 50 <= shadow: release
      pending(2, 5.0, 500.0),   // outlives shadow but fits the extra
      pending(3, 10.0, 500.0),  // outlives shadow, exceeds remaining extra
  };
  Decision out;
  easy->decide(view(0.0, 20.0), queue, run, out);
  ASSERT_EQ(out.release.size(), 2u);
  EXPECT_EQ(out.release[0], 1u);
  EXPECT_EQ(out.release[1], 2u);
  EXPECT_DOUBLE_EQ(out.wake_at_s, 100.0);  // re-decide at the shadow
}

TEST(EasyBackfill, RefusesBackfillThatWouldDelayTheHead) {
  // Same shadow as above but the candidate outlives it and exceeds the
  // extra: releasing it would push the head past t=100.
  const SchedulerPtr easy = make_easy_backfill();
  Decision out;
  easy->decide(view(0.0, 20.0),
               {pending(0, 50.0, 100.0), pending(1, 15.0, 500.0)},
               {running(9, 40.0, 100.0)}, out);
  EXPECT_TRUE(out.release.empty());
  EXPECT_DOUBLE_EQ(out.wake_at_s, 100.0);
}

TEST(EasyBackfill, OverdueEstimatesCountAsFreeingNow) {
  // The running job's estimate already expired (it ran long): its memory
  // counts as draining "now", so the shadow cannot move past now and no
  // wakeup is armed (completions will re-trigger the scheduler).
  const SchedulerPtr easy = make_easy_backfill();
  Decision out;
  easy->decide(view(10.0, 20.0), {pending(0, 50.0, 100.0)},
               {running(9, 40.0, 5.0)}, out);
  EXPECT_TRUE(out.release.empty());
  EXPECT_FALSE(out.wake_at_s > 10.0);
}

TEST(ConservativeBackfill, EveryQueuedJobHoldsAReservation) {
  // avail = 20; running r(80 MB) until t=100. A(50 MB) reserves t=100;
  // B(10 MB) fits now and must not be blocked by A's reservation.
  const SchedulerPtr cons = make_conservative_backfill();
  EXPECT_EQ(cons->name(), "backfill:conservative");
  Decision out;
  cons->decide(view(0.0, 20.0),
               {pending(0, 50.0, 10.0), pending(1, 10.0, 5.0)},
               {running(9, 80.0, 100.0)}, out);
  ASSERT_EQ(out.release.size(), 1u);
  EXPECT_EQ(out.release[0], 1u);
  EXPECT_DOUBLE_EQ(out.wake_at_s, 100.0);  // A's reserved start
}

TEST(ConservativeBackfill, ReservationsStackInQueueOrder) {
  // Two blocked jobs each needing the whole machine: the second's
  // reservation must start after the first's, not alongside it.
  const SchedulerPtr cons = make_conservative_backfill();
  Decision out;
  cons->decide(view(0.0, 0.0),
               {pending(0, 100.0, 50.0), pending(1, 100.0, 50.0)},
               {running(9, 100.0, 30.0)}, out);
  EXPECT_TRUE(out.release.empty());
  // Earliest reservation: job 0 at t=30 (job 1 stacks at t=80 behind it).
  EXPECT_DOUBLE_EQ(out.wake_at_s, 30.0);
}

TEST(ConservativeBackfill, ReleasesEverythingOnAnIdleCluster) {
  const SchedulerPtr cons = make_conservative_backfill();
  Decision out;
  cons->decide(view(0.0, 100.0),
               {pending(0, 40.0, 10.0), pending(1, 60.0, 10.0)}, {}, out);
  ASSERT_EQ(out.release.size(), 2u);
  EXPECT_FALSE(std::isfinite(out.wake_at_s) && out.wake_at_s > 0.0);
}

TEST(Preempt, EvictsStrictlyLowerPriorityLatestFirst) {
  const SchedulerPtr preempt = make_preempt(PreemptMode::kRequeue);
  EXPECT_EQ(preempt->name(), "preempt:requeue");
  EXPECT_EQ(preempt->preempt_mode(), PreemptMode::kRequeue);
  EXPECT_EQ(make_preempt(PreemptMode::kCheckpointRequeue)->name(),
            "preempt:ckpt");

  // avail = 10, job needs 50. Victims: among the prio-2 pair the later
  // release (index 2) goes first; the equal-priority job 0 is untouchable.
  Decision out;
  preempt->decide(view(0.0, 10.0), {pending(7, 50.0, 10.0, /*priority=*/5)},
                  {running(0, 30.0, 100.0, 5), running(1, 30.0, 100.0, 2),
                   running(2, 30.0, 100.0, 2)},
                  out);
  ASSERT_EQ(out.evict.size(), 2u);
  EXPECT_EQ(out.evict[0], 2u);
  EXPECT_EQ(out.evict[1], 1u);
  ASSERT_EQ(out.release.size(), 1u);
  EXPECT_EQ(out.release[0], 0u);
}

TEST(Preempt, ReleasesEvenWithoutAVictim) {
  // No strictly-lower-priority victim exists: the job is still released
  // and waits at the engine level, exactly like fcfs.
  const SchedulerPtr preempt = make_preempt(PreemptMode::kRequeue);
  Decision out;
  preempt->decide(view(0.0, 10.0), {pending(7, 50.0, 10.0, /*priority=*/1)},
                  {running(0, 30.0, 100.0, 5)}, out);
  EXPECT_TRUE(out.evict.empty());
  ASSERT_EQ(out.release.size(), 1u);
}

TEST(Registry, BuiltinsResolveWithArguments) {
  auto& reg = SchedulerRegistry::instance();
  EXPECT_EQ(reg.make("fcfs")->name(), "fcfs");
  EXPECT_EQ(reg.make("backfill")->name(), "backfill:easy");
  EXPECT_EQ(reg.make("backfill:easy")->name(), "backfill:easy");
  EXPECT_EQ(reg.make("backfill:conservative")->name(),
            "backfill:conservative");
  EXPECT_EQ(reg.make("preempt")->preempt_mode(), PreemptMode::kRequeue);
  EXPECT_EQ(reg.make("preempt:ckpt")->preempt_mode(),
            PreemptMode::kCheckpointRequeue);
  const auto names = reg.names();
  EXPECT_EQ(names, (std::vector<std::string>{"backfill", "fcfs", "preempt"}));
}

TEST(Registry, UnknownNameErrorListsRegisteredNames) {
  try {
    (void)SchedulerRegistry::instance().make("lottery");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("lottery"), std::string::npos);
    EXPECT_NE(what.find("backfill"), std::string::npos);
    EXPECT_NE(what.find("fcfs"), std::string::npos);
    EXPECT_NE(what.find("preempt"), std::string::npos);
  }
}

TEST(Registry, BadArgumentErrorListsValidArguments) {
  try {
    (void)SchedulerRegistry::instance().make("backfill:aggressive");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("aggressive"), std::string::npos);
    EXPECT_NE(what.find("easy"), std::string::npos);
    EXPECT_NE(what.find("conservative"), std::string::npos);
  }
  EXPECT_THROW((void)SchedulerRegistry::instance().make("fcfs:strict"),
               std::invalid_argument);
  EXPECT_THROW((void)SchedulerRegistry::instance().make("preempt:maybe"),
               std::invalid_argument);
}

// -- end to end through sim::Simulation --------------------------------------

/// Two single-task jobs on a one-VM cluster: the second cannot start until
/// the first finishes, so any non-pass-through scheduler must hold it.
trace::Trace contended_trace() {
  trace::Trace trace;
  trace.horizon_s = 4000.0;
  auto add_job = [&trace](std::uint64_t id, double arrival, double length,
                          int priority) {
    trace::JobRecord job;
    job.id = id;
    job.arrival_s = arrival;
    trace::TaskRecord task;
    task.job_id = id;
    task.length_s = length;
    task.memory_mb = 100.0;
    task.priority = priority;
    job.tasks.push_back(task);
    trace.jobs.push_back(job);
  };
  add_job(1, 0.0, 100.0, 5);
  add_job(2, 10.0, 50.0, 5);
  return trace;
}

sim::SimResult run_with(const trace::Trace& trace,
                        const SchedulerPolicy* scheduler) {
  const core::PolicyPtr policy = api::PolicyRegistry::instance().make("none");
  sim::SimConfig config;
  config.cluster = {1, 1, 100.0};
  config.scheduler = scheduler;
  sim::Simulation simulation(config, *policy, sim::make_oracle_predictor());
  return simulation.run(trace);
}

TEST(SchedulingStage, FcfsMatchesNoSchedulerAndReportsZeroWaits) {
  const auto trace = contended_trace();
  const sim::SimResult bare = run_with(trace, nullptr);
  const SchedulerPtr fcfs = make_fcfs();
  const sim::SimResult fcfs_run = run_with(trace, fcfs.get());

  EXPECT_DOUBLE_EQ(fcfs_run.total_sched_wait_s, 0.0);
  EXPECT_EQ(fcfs_run.backfilled_jobs, 0u);
  EXPECT_EQ(fcfs_run.preempted_tasks, 0u);
  EXPECT_DOUBLE_EQ(fcfs_run.makespan_s, bare.makespan_s);
  ASSERT_EQ(fcfs_run.outcomes.size(), bare.outcomes.size());
  for (std::size_t i = 0; i < bare.outcomes.size(); ++i) {
    EXPECT_DOUBLE_EQ(fcfs_run.outcomes[i].wallclock_s,
                     bare.outcomes[i].wallclock_s);
  }
}

TEST(SchedulingStage, BackfillHoldsTheSecondJobUntilTheFirstFinishes) {
  const SchedulerPtr easy = make_easy_backfill();
  const sim::SimResult result = run_with(contended_trace(), easy.get());
  ASSERT_EQ(result.outcomes.size(), 2u);
  // Job 2 arrives at t=10 into a full machine and is held until job 1
  // completes at t=100: 90 s of scheduler wait, charged to the job and the
  // run aggregate — but not to queue_s, which starts at release.
  const auto& held = result.outcomes[1];
  EXPECT_EQ(held.job_id, 2u);
  EXPECT_DOUBLE_EQ(held.sched_wait_s, 90.0);
  EXPECT_DOUBLE_EQ(result.total_sched_wait_s, 90.0);
  EXPECT_DOUBLE_EQ(result.outcomes[0].sched_wait_s, 0.0);
  // Wallclock includes the hold: arrival 10 -> done 150.
  EXPECT_DOUBLE_EQ(held.wallclock_s, 140.0);
  EXPECT_EQ(result.preempted_tasks, 0u);
}

TEST(SchedulingStage, EasyBackfillRunsAShortJobAroundTheReservation) {
  // One-VM-per-host, two hosts: job 1 occupies one VM until t=100; job 2
  // (needs both VMs) blocks and reserves; job 3 (one VM, 20 s) fits now
  // and ends before the shadow -> backfilled ahead of job 2.
  trace::Trace trace;
  trace.horizon_s = 4000.0;
  auto add = [&trace](std::uint64_t id, double arrival, double length,
                      std::size_t tasks) {
    trace::JobRecord job;
    job.id = id;
    job.arrival_s = arrival;
    job.structure = tasks > 1 ? trace::JobStructure::kBagOfTasks
                              : trace::JobStructure::kSequentialTasks;
    for (std::size_t i = 0; i < tasks; ++i) {
      trace::TaskRecord task;
      task.job_id = id;
      task.index_in_job = static_cast<std::uint32_t>(i);
      task.length_s = length;
      task.memory_mb = 100.0;
      task.priority = 5;
      job.tasks.push_back(task);
    }
    trace.jobs.push_back(job);
  };
  add(1, 0.0, 100.0, 1);
  add(2, 10.0, 50.0, 2);  // BoT over both VMs: blocked until t=100
  add(3, 20.0, 20.0, 1);  // backfills into the free VM

  const core::PolicyPtr policy = api::PolicyRegistry::instance().make("none");
  const SchedulerPtr easy = make_easy_backfill();
  sim::SimConfig config;
  config.cluster = {2, 1, 100.0};
  config.scheduler = easy.get();
  sim::Simulation simulation(config, *policy, sim::make_oracle_predictor());
  const sim::SimResult result = simulation.run(trace);

  ASSERT_EQ(result.outcomes.size(), 3u);
  EXPECT_EQ(result.backfilled_jobs, 1u);
  // Job 3 finishes first (20 + 20), then job 1, then the held job 2.
  EXPECT_EQ(result.outcomes[0].job_id, 3u);
  EXPECT_TRUE(result.outcomes[0].backfilled);
  EXPECT_DOUBLE_EQ(result.outcomes[0].sched_wait_s, 0.0);
  EXPECT_EQ(result.outcomes[2].job_id, 2u);
  EXPECT_DOUBLE_EQ(result.outcomes[2].sched_wait_s, 90.0);
}

TEST(SchedulingStage, PreemptEvictsLowerPriorityWork) {
  trace::Trace trace;
  trace.horizon_s = 4000.0;
  {
    trace::JobRecord job;
    job.id = 1;
    job.arrival_s = 0.0;
    trace::TaskRecord task;
    task.job_id = 1;
    task.length_s = 100.0;
    task.memory_mb = 100.0;
    task.priority = 2;
    job.tasks.push_back(task);
    trace.jobs.push_back(job);
  }
  {
    trace::JobRecord job;
    job.id = 2;
    job.arrival_s = 10.0;
    trace::TaskRecord task;
    task.job_id = 2;
    task.length_s = 10.0;
    task.memory_mb = 100.0;
    task.priority = 9;
    job.tasks.push_back(task);
    trace.jobs.push_back(job);
  }
  const SchedulerPtr preempt = make_preempt(PreemptMode::kRequeue);
  const sim::SimResult result = run_with(trace, preempt.get());

  EXPECT_EQ(result.preempted_tasks, 1u);
  ASSERT_EQ(result.outcomes.size(), 2u);
  // The high-priority job runs immediately: arrival 10 -> done 20.
  EXPECT_EQ(result.outcomes[0].job_id, 2u);
  EXPECT_DOUBLE_EQ(result.outcomes[0].wallclock_s, 10.0);
  // The victim restarts from scratch after the preemptor finishes: 10 s of
  // progress lost, done at 20 + 100 plus the storage model's restart price
  // (the same price a failure restart pays).
  EXPECT_EQ(result.outcomes[1].job_id, 1u);
  EXPECT_GE(result.outcomes[1].wallclock_s, 120.0);
  EXPECT_LT(result.outcomes[1].wallclock_s, 125.0);
  EXPECT_DOUBLE_EQ(result.outcomes[1].rollback_s, 10.0);
}

}  // namespace
}  // namespace cloudcr::sched
