#include "metrics/report.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

namespace cloudcr::metrics {
namespace {

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RejectsWidthMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({std::string("1")}), std::invalid_argument);
}

TEST(Table, PrintsAlignedColumns) {
  Table t({"metric", "value"});
  t.add_row({std::string("wpr"), std::string("0.95")});
  t.add_row({std::string("wallclock"), std::string("123.4")});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("metric"), std::string::npos);
  EXPECT_NE(s.find("wallclock"), std::string::npos);
  EXPECT_NE(s.find("0.95"), std::string::npos);
  // Rules around header + body.
  EXPECT_GE(std::count(s.begin(), s.end(), '+'), 6);
}

TEST(Table, NumericRowFormatting) {
  Table t({"x", "y"});
  t.add_row(std::vector<double>{1.23456, 2.0}, 2);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("1.23"), std::string::npos);
  EXPECT_NE(os.str().find("2.00"), std::string::npos);
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Fmt, Precision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 4), "3.1416");
  EXPECT_EQ(fmt(10.0, 0), "10");
}

TEST(PrintSeries, EmitsNameAndPoints) {
  std::ostringstream os;
  print_series(os, "cdf", {{1.0, 0.5}, {2.0, 1.0}});
  const std::string s = os.str();
  EXPECT_NE(s.find("# series: cdf"), std::string::npos);
  EXPECT_NE(s.find("1 0.5"), std::string::npos);
  EXPECT_NE(s.find("2 1"), std::string::npos);
}

TEST(PrintBanner, Format) {
  std::ostringstream os;
  print_banner(os, "Table 6");
  EXPECT_EQ(os.str(), "\n== Table 6 ==\n");
}

}  // namespace
}  // namespace cloudcr::metrics
