#include "metrics/wpr.hpp"

#include <gtest/gtest.h>

namespace cloudcr::metrics {
namespace {

JobOutcome outcome(double workload, double wallclock) {
  JobOutcome o;
  o.workload_s = workload;
  o.wallclock_s = wallclock;
  o.task_wallclock_s = wallclock;  // single-task job: the two coincide
  return o;
}

TEST(Wpr, Formula9Definition) {
  EXPECT_DOUBLE_EQ(outcome(90.0, 100.0).wpr(), 0.9);
  EXPECT_DOUBLE_EQ(outcome(100.0, 100.0).wpr(), 1.0);
}

TEST(Wpr, ZeroWallclockYieldsZero) {
  EXPECT_DOUBLE_EQ(outcome(10.0, 0.0).wpr(), 0.0);
}

TEST(Wpr, ParallelJobsDivideByTaskWallclock) {
  // Two 100 s tasks running fully in parallel: makespan 100 but the WPR
  // denominator is the 200 s of per-task wall-clock, keeping WPR <= 1.
  JobOutcome o;
  o.workload_s = 200.0;
  o.wallclock_s = 100.0;
  o.task_wallclock_s = 200.0;
  EXPECT_DOUBLE_EQ(o.wpr(), 1.0);
}

TEST(Wpr, ValuesVector) {
  const std::vector<JobOutcome> outs{outcome(50.0, 100.0),
                                     outcome(80.0, 100.0)};
  const auto vals = wpr_values(outs);
  ASSERT_EQ(vals.size(), 2u);
  EXPECT_DOUBLE_EQ(vals[0], 0.5);
  EXPECT_DOUBLE_EQ(vals[1], 0.8);
}

TEST(Wpr, AverageAndLowest) {
  const std::vector<JobOutcome> outs{outcome(50.0, 100.0),
                                     outcome(80.0, 100.0),
                                     outcome(100.0, 100.0)};
  EXPECT_NEAR(average_wpr(outs), (0.5 + 0.8 + 1.0) / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(lowest_wpr(outs), 0.5);
}

TEST(Wpr, EmptyAggregatesAreZero) {
  const std::vector<JobOutcome> empty;
  EXPECT_DOUBLE_EQ(average_wpr(empty), 0.0);
  EXPECT_DOUBLE_EQ(lowest_wpr(empty), 0.0);
  EXPECT_DOUBLE_EQ(fraction_below(empty, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(fraction_above(empty, 0.5), 0.0);
}

TEST(Wpr, FractionThresholds) {
  const std::vector<JobOutcome> outs{outcome(50.0, 100.0),
                                     outcome(80.0, 100.0),
                                     outcome(95.0, 100.0),
                                     outcome(100.0, 100.0)};
  EXPECT_DOUBLE_EQ(fraction_below(outs, 0.9), 0.5);
  EXPECT_DOUBLE_EQ(fraction_above(outs, 0.9), 0.5);
  // Strict comparisons: 0.8 is not below 0.8.
  EXPECT_DOUBLE_EQ(fraction_below(outs, 0.8), 0.25);
}

}  // namespace
}  // namespace cloudcr::metrics
