// JSON/CSV export: escaping, numeric fidelity, and document shape — both
// the metrics-level outcome writers and the api-level artifact documents.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "api/artifact_io.hpp"
#include "metrics/export.hpp"

namespace cloudcr {
namespace {

metrics::JobOutcome sample_outcome() {
  metrics::JobOutcome o;
  o.job_id = 42;
  o.bag_of_tasks = true;
  o.priority = 9;
  o.workload_s = 1200.0;
  o.wallclock_s = 1500.25;
  o.task_wallclock_s = 1300.5;
  o.queue_s = 10.0;
  o.checkpoint_s = 50.5;
  o.rollback_s = 30.0;
  o.restart_s = 10.0;
  o.checkpoints = 12;
  o.failures = 3;
  o.max_task_length_s = 700.0;
  return o;
}

TEST(JsonHelpers, QuoteEscapesSpecials) {
  EXPECT_EQ(metrics::json_quote("plain"), "\"plain\"");
  EXPECT_EQ(metrics::json_quote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(metrics::json_quote("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(metrics::json_quote("line\nbreak"), "\"line\\nbreak\"");
  EXPECT_EQ(metrics::json_quote(std::string("ctl\x01")), "\"ctl\\u0001\"");
}

TEST(JsonHelpers, DoubleHandlesNonFinite) {
  EXPECT_EQ(metrics::json_double(1.5), "1.5");
  EXPECT_EQ(metrics::json_double(std::numeric_limits<double>::infinity()),
            "\"inf\"");
  EXPECT_EQ(metrics::json_double(-std::numeric_limits<double>::infinity()),
            "\"-inf\"");
  EXPECT_EQ(metrics::json_double(std::nan("")), "\"nan\"");
  // Round-trippable precision.
  EXPECT_EQ(metrics::json_double(0.1 + 0.2), "0.30000000000000004");
}

TEST(OutcomeJson, ContainsEveryField) {
  std::ostringstream os;
  metrics::write_outcome_json(os, sample_outcome());
  const auto json = os.str();
  EXPECT_NE(json.find("\"job_id\":42"), std::string::npos);
  EXPECT_NE(json.find("\"structure\":\"BoT\""), std::string::npos);
  EXPECT_NE(json.find("\"priority\":9"), std::string::npos);
  EXPECT_NE(json.find("\"checkpoints\":12"), std::string::npos);
  EXPECT_NE(json.find("\"wallclock_s\":1500.25"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(OutcomeCsv, HeaderMatchesRows) {
  std::ostringstream os;
  metrics::write_outcomes_csv(os, {sample_outcome(), sample_outcome()});
  std::istringstream is(os.str());
  std::string header, row1, row2, extra;
  ASSERT_TRUE(std::getline(is, header));
  ASSERT_TRUE(std::getline(is, row1));
  ASSERT_TRUE(std::getline(is, row2));
  EXPECT_FALSE(std::getline(is, extra));
  EXPECT_EQ(header, metrics::outcome_csv_header());
  EXPECT_EQ(row1, row2);
  // Same number of cells in header and row.
  const auto count_commas = [](const std::string& s) {
    return std::count(s.begin(), s.end(), ',');
  };
  EXPECT_EQ(count_commas(header), count_commas(row1));
  EXPECT_NE(row1.find("42,BoT,9,"), std::string::npos);
}

api::RunArtifact sample_artifact() {
  api::RunArtifact artifact;
  artifact.spec.name = "unit \"quoted\"";
  artifact.spec.policy = "fixed:45";
  artifact.trace_jobs = 2;
  artifact.trace_tasks = 5;
  artifact.wall_time_s = 0.125;
  artifact.result.outcomes = {sample_outcome()};
  artifact.result.total_checkpoints = 12;
  artifact.result.total_failures = 3;
  artifact.result.makespan_s = 1500.25;
  return artifact;
}

TEST(ArtifactJson, EmbedsSpecEchoAndSummary) {
  std::ostringstream os;
  api::write_artifact_json(os, sample_artifact());
  const auto json = os.str();
  EXPECT_NE(json.find("\"name\":\"unit \\\"quoted\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"policy\":\"fixed:45\""), std::string::npos);
  EXPECT_NE(json.find("\"serialized\":\"name=unit"), std::string::npos);
  EXPECT_NE(json.find("\"completed_jobs\":1"), std::string::npos);
  EXPECT_NE(json.find("\"total_failures\":3"), std::string::npos);
  EXPECT_NE(json.find("\"outcomes\":[{"), std::string::npos);
}

TEST(ArtifactJson, SpecEchoRoundTripsThroughParse) {
  // The embedded serialized spec must parse back to the original — the
  // "artifact is re-runnable" guarantee.
  const auto artifact = sample_artifact();
  const auto reparsed = api::parse_scenario(api::serialize(artifact.spec));
  EXPECT_EQ(reparsed, artifact.spec);
}

TEST(ArtifactJson, OutcomesCanBeElided) {
  std::ostringstream os;
  api::write_artifact_json(os, sample_artifact(), /*include_outcomes=*/false);
  EXPECT_EQ(os.str().find("\"outcomes\""), std::string::npos);
}

TEST(ArtifactJson, ArrayWrapsAllArtifacts) {
  std::ostringstream os;
  api::write_artifacts_json(os, {sample_artifact(), sample_artifact()});
  const auto json = os.str();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.substr(json.size() - 2), "]\n");
}

TEST(ArtifactCsv, OneSummaryRowPerArtifact) {
  std::ostringstream os;
  api::write_artifacts_csv(os, {sample_artifact(), sample_artifact()});
  std::istringstream is(os.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(is, line)) ++lines;
  EXPECT_EQ(lines, 3u);  // header + 2 rows
}

}  // namespace
}  // namespace cloudcr
