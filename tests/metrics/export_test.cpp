// JSON/CSV export: escaping, numeric fidelity, and document shape — both
// the metrics-level outcome writers and the api-level artifact documents.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "api/artifact_io.hpp"
#include "metrics/export.hpp"

namespace cloudcr {
namespace {

metrics::JobOutcome sample_outcome() {
  metrics::JobOutcome o;
  o.job_id = 42;
  o.bag_of_tasks = true;
  o.priority = 9;
  o.workload_s = 1200.0;
  o.wallclock_s = 1500.25;
  o.task_wallclock_s = 1300.5;
  o.queue_s = 10.0;
  o.checkpoint_s = 50.5;
  o.rollback_s = 30.0;
  o.restart_s = 10.0;
  o.checkpoints = 12;
  o.failures = 3;
  o.max_task_length_s = 700.0;
  o.sched_wait_s = 12.625;
  o.backfilled = true;
  return o;
}

TEST(JsonHelpers, QuoteEscapesSpecials) {
  EXPECT_EQ(metrics::json_quote("plain"), "\"plain\"");
  EXPECT_EQ(metrics::json_quote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(metrics::json_quote("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(metrics::json_quote("line\nbreak"), "\"line\\nbreak\"");
  EXPECT_EQ(metrics::json_quote(std::string("ctl\x01")), "\"ctl\\u0001\"");
}

TEST(JsonHelpers, DoubleHandlesNonFinite) {
  EXPECT_EQ(metrics::json_double(1.5), "1.5");
  EXPECT_EQ(metrics::json_double(std::numeric_limits<double>::infinity()),
            "\"inf\"");
  EXPECT_EQ(metrics::json_double(-std::numeric_limits<double>::infinity()),
            "\"-inf\"");
  EXPECT_EQ(metrics::json_double(std::nan("")), "\"nan\"");
  // Round-trippable precision.
  EXPECT_EQ(metrics::json_double(0.1 + 0.2), "0.30000000000000004");
}

TEST(OutcomeJson, ContainsEveryField) {
  std::ostringstream os;
  metrics::write_outcome_json(os, sample_outcome());
  const auto json = os.str();
  EXPECT_NE(json.find("\"job_id\":42"), std::string::npos);
  EXPECT_NE(json.find("\"structure\":\"BoT\""), std::string::npos);
  EXPECT_NE(json.find("\"priority\":9"), std::string::npos);
  EXPECT_NE(json.find("\"checkpoints\":12"), std::string::npos);
  EXPECT_NE(json.find("\"wallclock_s\":1500.25"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(OutcomeCsv, HeaderMatchesRows) {
  std::ostringstream os;
  metrics::write_outcomes_csv(os, {sample_outcome(), sample_outcome()});
  std::istringstream is(os.str());
  std::string header, row1, row2, extra;
  ASSERT_TRUE(std::getline(is, header));
  ASSERT_TRUE(std::getline(is, row1));
  ASSERT_TRUE(std::getline(is, row2));
  EXPECT_FALSE(std::getline(is, extra));
  EXPECT_EQ(header, metrics::outcome_csv_header());
  EXPECT_EQ(row1, row2);
  // Same number of cells in header and row.
  const auto count_commas = [](const std::string& s) {
    return std::count(s.begin(), s.end(), ',');
  };
  EXPECT_EQ(count_commas(header), count_commas(row1));
  EXPECT_NE(row1.find("42,BoT,9,"), std::string::npos);
}

api::RunArtifact sample_artifact() {
  api::RunArtifact artifact;
  artifact.spec.name = "unit \"quoted\"";
  artifact.spec.policy = "fixed:45";
  artifact.trace_jobs = 2;
  artifact.trace_tasks = 5;
  artifact.wall_time_s = 0.125;
  artifact.result.outcomes = {sample_outcome()};
  artifact.result.total_checkpoints = 12;
  artifact.result.total_failures = 3;
  artifact.result.makespan_s = 1500.25;
  return artifact;
}

TEST(ArtifactJson, EmbedsSpecEchoAndSummary) {
  std::ostringstream os;
  api::write_artifact_json(os, sample_artifact());
  const auto json = os.str();
  EXPECT_NE(json.find("\"name\":\"unit \\\"quoted\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"policy\":\"fixed:45\""), std::string::npos);
  EXPECT_NE(json.find("\"serialized\":\"name=unit"), std::string::npos);
  EXPECT_NE(json.find("\"completed_jobs\":1"), std::string::npos);
  EXPECT_NE(json.find("\"total_failures\":3"), std::string::npos);
  EXPECT_NE(json.find("\"outcomes\":[{"), std::string::npos);
}

TEST(ArtifactJson, SpecEchoRoundTripsThroughParse) {
  // The embedded serialized spec must parse back to the original — the
  // "artifact is re-runnable" guarantee.
  const auto artifact = sample_artifact();
  const auto reparsed = api::parse_scenario(api::serialize(artifact.spec));
  EXPECT_EQ(reparsed, artifact.spec);
}

TEST(ArtifactJson, OutcomesCanBeElided) {
  std::ostringstream os;
  api::write_artifact_json(os, sample_artifact(), /*include_outcomes=*/false);
  EXPECT_EQ(os.str().find("\"outcomes\""), std::string::npos);
}

TEST(ArtifactJson, ArrayWrapsAllArtifacts) {
  std::ostringstream os;
  api::write_artifacts_json(os, {sample_artifact(), sample_artifact()});
  const auto json = os.str();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.substr(json.size() - 2), "]\n");
}

TEST(ArtifactCsv, OneSummaryRowPerArtifact) {
  std::ostringstream os;
  api::write_artifacts_csv(os, {sample_artifact(), sample_artifact()});
  std::istringstream is(os.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(is, line)) ++lines;
  EXPECT_EQ(lines, 3u);  // header + 2 rows
}

// -- numeric round trips -----------------------------------------------------
// The export formats feed the reproduction report and plotting pipelines;
// every finite double must survive format -> parse bit-exactly, and the CSV
// cells must re-parse to the same values the outcome carried.

TEST(JsonRoundTrip, FiniteDoublesSurviveBitExactly) {
  for (const double v :
       {0.0, -0.0, 1.0 / 3.0, 0.89943741909499431, 1e-308, 1.7976931348623157e308,
        -2.5, 12345.6789, 5e-324}) {
    const std::string text = metrics::json_double(v);
    EXPECT_EQ(std::strtod(text.c_str(), nullptr), v) << text;
  }
}

TEST(CsvRoundTrip, FiniteDoublesSurviveBitExactly) {
  for (const double v : {0.25, -1.0 / 7.0, 3.22, 86400.0, 1e-12}) {
    const std::string text = metrics::csv_double(v);
    EXPECT_EQ(std::strtod(text.c_str(), nullptr), v) << text;
  }
}

TEST(CsvRoundTrip, OutcomeRowReparsesToOriginalValues) {
  const auto outcome = sample_outcome();
  std::ostringstream os;
  metrics::write_outcome_csv(os, outcome);
  // Split the row into cells.
  std::vector<std::string> cells;
  std::string row = os.str();
  if (!row.empty() && row.back() == '\n') row.pop_back();
  std::istringstream is(row);
  std::string cell;
  while (std::getline(is, cell, ',')) cells.push_back(cell);
  // Header and row agree on arity.
  std::istringstream hs(metrics::outcome_csv_header());
  std::vector<std::string> headers;
  while (std::getline(hs, cell, ',')) headers.push_back(cell);
  ASSERT_EQ(cells.size(), headers.size());
  // Spot-check the numeric columns against the outcome by header name.
  const auto cell_for = [&](const std::string& name) -> std::string {
    for (std::size_t i = 0; i < headers.size(); ++i) {
      if (headers[i] == name) return cells[i];
    }
    ADD_FAILURE() << "no column " << name;
    return "";
  };
  EXPECT_EQ(std::strtod(cell_for("workload_s").c_str(), nullptr),
            outcome.workload_s);
  EXPECT_EQ(std::strtod(cell_for("wallclock_s").c_str(), nullptr),
            outcome.wallclock_s);
  EXPECT_EQ(std::strtod(cell_for("task_wallclock_s").c_str(), nullptr),
            outcome.task_wallclock_s);
  EXPECT_EQ(std::strtod(cell_for("checkpoint_s").c_str(), nullptr),
            outcome.checkpoint_s);
  EXPECT_EQ(std::strtoull(cell_for("job_id").c_str(), nullptr, 10),
            outcome.job_id);
  EXPECT_EQ(std::strtod(cell_for("sched_wait_s").c_str(), nullptr),
            outcome.sched_wait_s);
  EXPECT_EQ(cell_for("backfilled"), "1");
}

TEST(JsonRoundTrip, OutcomeJsonValuesReparse) {
  const auto outcome = sample_outcome();
  std::ostringstream os;
  metrics::write_outcome_json(os, outcome);
  const std::string json = os.str();
  // Extract "key":value and re-parse the double bit-exactly.
  const auto value_of = [&](const std::string& key) -> double {
    const std::string needle = "\"" + key + "\":";
    const auto pos = json.find(needle);
    EXPECT_NE(pos, std::string::npos) << key;
    return std::strtod(json.c_str() + pos + needle.size(), nullptr);
  };
  EXPECT_EQ(value_of("workload_s"), outcome.workload_s);
  EXPECT_EQ(value_of("wallclock_s"), outcome.wallclock_s);
  EXPECT_EQ(value_of("rollback_s"), outcome.rollback_s);
  EXPECT_EQ(value_of("wpr"), outcome.wpr());
  EXPECT_EQ(value_of("sched_wait_s"), outcome.sched_wait_s);
  EXPECT_NE(json.find("\"backfilled\":true"), std::string::npos);
}

TEST(OutcomeJson, SchedFieldsAreSparse) {
  // A job the scheduler never held (every fcfs job) must serialize exactly
  // as before the scheduling stage existed — that byte-stability is what
  // keeps the golden replay fixtures valid.
  auto outcome = sample_outcome();
  outcome.sched_wait_s = 0.0;
  outcome.backfilled = false;
  std::ostringstream os;
  metrics::write_outcome_json(os, outcome);
  EXPECT_EQ(os.str().find("sched_wait_s"), std::string::npos);
  EXPECT_EQ(os.str().find("backfilled"), std::string::npos);
}

}  // namespace
}  // namespace cloudcr
