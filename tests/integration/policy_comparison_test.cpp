// Integration tests for the paper's headline claims, at reduced scale:
//  * with precise per-task prediction, Formula (3) and Young's formula are
//    nearly indistinguishable (Table 6);
//  * with priority-group estimation over a heavy-tailed trace, Formula (3)
//    outperforms Young's (Figs 9-13);
//  * the adaptive algorithm beats the static one under priority changes
//    (Fig 14).

#include <gtest/gtest.h>

#include <map>

#include "sim/predictors.hpp"
#include "sim/simulation.hpp"
#include "trace/generator.hpp"

namespace cloudcr {
namespace {

trace::Trace make_trace(std::uint64_t seed, double hours,
                        bool priority_change = false) {
  trace::GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.horizon_s = hours * 3600.0;
  cfg.arrival_rate = 0.08;
  cfg.priority_change_midway = priority_change;
  return trace::TraceGenerator(cfg).generate();
}

double run_wpr(const trace::Trace& trace, const core::CheckpointPolicy& policy,
               const sim::StatsPredictor& predictor,
               core::AdaptationMode mode = core::AdaptationMode::kAdaptive) {
  sim::SimConfig cfg;
  cfg.adaptation = mode;
  sim::Simulation sim(cfg, policy, predictor);
  const auto res = sim.run(trace);
  EXPECT_GT(res.outcomes.size(), 0u);
  return res.average_wpr();
}

TEST(PolicyComparison, PrecisePredictionMakesPoliciesCoincide) {
  const auto trace = make_trace(201, 6.0);
  const core::MnofPolicy mnof;
  const core::YoungPolicy young;
  const auto oracle = sim::make_oracle_predictor();
  const double wpr_mnof = run_wpr(trace, mnof, oracle);
  const double wpr_young = run_wpr(trace, young, oracle);
  // Table 6: "with exact values, both approaches almost coincide".
  EXPECT_NEAR(wpr_mnof, wpr_young, 0.02);
  EXPECT_GT(wpr_mnof, 0.9);
}

TEST(PolicyComparison, GroupEstimationFavorsFormula3) {
  const auto trace = make_trace(203, 8.0);
  const core::MnofPolicy mnof;
  const core::YoungPolicy young;
  const auto grouped = sim::make_grouped_predictor(trace);
  const double wpr_mnof = run_wpr(trace, mnof, grouped);
  const double wpr_young = run_wpr(trace, young, grouped);
  // Figs 9-10: Formula (3) wins once estimates come from priority groups.
  EXPECT_GT(wpr_mnof, wpr_young);
}

TEST(PolicyComparison, MajorityOfJobsFasterUnderFormula3) {
  const auto trace = make_trace(205, 8.0);
  const core::MnofPolicy mnof;
  const core::YoungPolicy young;
  const auto grouped = sim::make_grouped_predictor(trace);

  sim::SimConfig cfg;
  const auto res_m = sim::Simulation(cfg, mnof, grouped).run(trace);
  const auto res_y = sim::Simulation(cfg, young, grouped).run(trace);

  // Pair outcomes by job id (identical kill sequences by construction).
  std::map<std::uint64_t, double> tw_young;
  for (const auto& o : res_y.outcomes) tw_young[o.job_id] = o.wallclock_s;
  int faster = 0, slower = 0;
  for (const auto& o : res_m.outcomes) {
    const auto it = tw_young.find(o.job_id);
    if (it == tw_young.end()) continue;
    if (o.wallclock_s < it->second - 1e-9) {
      ++faster;
    } else if (o.wallclock_s > it->second + 1e-9) {
      ++slower;
    }
  }
  // Fig 13: ~70% of jobs run faster under Formula (3); require a majority of
  // the decided comparisons.
  EXPECT_GT(faster, slower);
}

TEST(PolicyComparison, DynamicBeatsStaticUnderPriorityChanges) {
  const auto trace = make_trace(207, 6.0, /*priority_change=*/true);
  const core::MnofPolicy policy;
  const auto grouped = sim::make_grouped_predictor(trace);
  const auto submission = sim::make_submission_priority_predictor(trace);

  const double dynamic_wpr =
      run_wpr(trace, policy, grouped, core::AdaptationMode::kAdaptive);
  const double static_wpr =
      run_wpr(trace, policy, submission, core::AdaptationMode::kStatic);
  // Fig 14: the adaptive algorithm outperforms the static one.
  EXPECT_GE(dynamic_wpr, static_wpr);
}

TEST(PolicyComparison, CheckpointingBeatsNoCheckpointing) {
  const auto trace = make_trace(209, 6.0);
  const core::MnofPolicy mnof;
  const core::NoCheckpointPolicy none;
  const auto grouped = sim::make_grouped_predictor(trace);
  EXPECT_GT(run_wpr(trace, mnof, grouped), run_wpr(trace, none, grouped));
}

TEST(PolicyComparison, DalyTracksYoungOnThisWorkload) {
  // Daly's refinement consumes the same MTBF; on cloud traces it inherits
  // Young's estimation fragility, landing close to Young (related work
  // discussion).
  const auto trace = make_trace(211, 6.0);
  const core::YoungPolicy young;
  const core::DalyPolicy daly;
  const auto grouped = sim::make_grouped_predictor(trace);
  const double wpr_young = run_wpr(trace, young, grouped);
  const double wpr_daly = run_wpr(trace, daly, grouped);
  EXPECT_NEAR(wpr_daly, wpr_young, 0.05);
}

TEST(PolicyComparison, AutoStorageSelectionAtLeastMatchesForcedShared) {
  const auto trace = make_trace(213, 6.0);
  const core::MnofPolicy policy;
  const auto grouped = sim::make_grouped_predictor(trace);

  sim::SimConfig auto_cfg;
  auto_cfg.placement = sim::PlacementMode::kAutoSelect;
  sim::SimConfig shared_cfg;
  shared_cfg.placement = sim::PlacementMode::kForceShared;

  const auto auto_res =
      sim::Simulation(auto_cfg, policy, grouped).run(trace);
  const auto shared_res =
      sim::Simulation(shared_cfg, policy, grouped).run(trace);
  EXPECT_GE(auto_res.average_wpr() + 0.005, shared_res.average_wpr());
}

}  // namespace
}  // namespace cloudcr
