// End-to-end integration: generate a synthetic Google-like trace, replay it
// through the full simulator with the paper's adaptive policy, and verify the
// global accounting invariants hold across thousands of events.

#include <gtest/gtest.h>

#include <sstream>

#include "sim/predictors.hpp"
#include "sim/simulation.hpp"
#include "trace/generator.hpp"
#include "trace/trace_io.hpp"

namespace cloudcr {
namespace {

trace::Trace make_trace(std::uint64_t seed, double hours,
                        bool priority_change = false) {
  trace::GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.horizon_s = hours * 3600.0;
  cfg.arrival_rate = 0.08;
  cfg.priority_change_midway = priority_change;
  return trace::TraceGenerator(cfg).generate();
}

TEST(EndToEnd, FullPipelineCompletesAllJobs) {
  const auto trace = make_trace(101, 4.0);
  ASSERT_GT(trace.job_count(), 20u);

  sim::SimConfig cfg;
  const core::MnofPolicy policy;
  sim::Simulation sim(cfg, policy, sim::make_grouped_predictor(trace));
  const auto res = sim.run(trace);

  EXPECT_EQ(res.incomplete_jobs, 0u);
  EXPECT_EQ(res.outcomes.size(), trace.job_count());
  EXPECT_GT(res.total_checkpoints, 0u);
  EXPECT_GT(res.total_failures, 0u);
  EXPECT_GT(res.makespan_s, 0.0);
}

TEST(EndToEnd, PerJobAccountingInvariants) {
  const auto trace = make_trace(103, 4.0);
  sim::SimConfig cfg;
  const core::MnofPolicy policy;
  sim::Simulation sim(cfg, policy, sim::make_grouped_predictor(trace));
  const auto res = sim.run(trace);

  ASSERT_GT(res.outcomes.size(), 0u);
  for (const auto& out : res.outcomes) {
    // WPR in (0, 1]; all components non-negative; wall-clock at least covers
    // the critical path of the workload.
    EXPECT_GT(out.wpr(), 0.0) << "job " << out.job_id;
    EXPECT_LE(out.wpr(), 1.0 + 1e-9) << "job " << out.job_id;
    EXPECT_GE(out.queue_s, 0.0);
    EXPECT_GE(out.checkpoint_s, 0.0);
    EXPECT_GE(out.rollback_s, 0.0);
    EXPECT_GE(out.restart_s, 0.0);
    EXPECT_GE(out.wallclock_s, out.max_task_length_s - 1e-6);
    // Total overhead bounded by wall-clock.
    EXPECT_LE(out.checkpoint_s + out.rollback_s + out.restart_s,
              out.wallclock_s + 1e-6);
  }
}

TEST(EndToEnd, SequentialJobsAccountQueueSeparately) {
  const auto trace = make_trace(107, 2.0);
  sim::SimConfig cfg;
  const core::MnofPolicy policy;
  sim::Simulation sim(cfg, policy, sim::make_grouped_predictor(trace));
  const auto res = sim.run(trace);
  for (const auto& out : res.outcomes) {
    if (!out.bag_of_tasks) {
      // For ST jobs, wall-clock ~= workload + overheads + queue (tasks never
      // overlap).
      EXPECT_NEAR(out.wallclock_s,
                  out.workload_s + out.checkpoint_s + out.rollback_s +
                      out.restart_s + out.queue_s,
                  1e-6)
          << "job " << out.job_id;
    }
  }
}

TEST(EndToEnd, AdaptiveSurvivesPriorityChanges) {
  const auto trace = make_trace(109, 2.0, /*priority_change=*/true);
  sim::SimConfig cfg;
  cfg.adaptation = core::AdaptationMode::kAdaptive;
  const core::MnofPolicy policy;
  sim::Simulation sim(cfg, policy, sim::make_grouped_predictor(trace));
  const auto res = sim.run(trace);
  EXPECT_EQ(res.incomplete_jobs, 0u);
  EXPECT_GT(res.average_wpr(), 0.5);
}

TEST(EndToEnd, SharedNfsContentionHurtsUnderLoad) {
  // Same trace replayed on single-server NFS vs DM-NFS: when many tasks
  // checkpoint simultaneously, the single server's contention must cost WPR.
  const auto trace = make_trace(113, 4.0);
  const core::MnofPolicy policy;

  sim::SimConfig nfs_cfg;
  nfs_cfg.placement = sim::PlacementMode::kForceShared;
  nfs_cfg.shared_kind = storage::DeviceKind::kSharedNfs;
  sim::SimConfig dm_cfg;
  dm_cfg.placement = sim::PlacementMode::kForceShared;
  dm_cfg.shared_kind = storage::DeviceKind::kDmNfs;

  const auto nfs_res =
      sim::Simulation(nfs_cfg, policy, sim::make_grouped_predictor(trace))
          .run(trace);
  const auto dm_res =
      sim::Simulation(dm_cfg, policy, sim::make_grouped_predictor(trace))
          .run(trace);
  EXPECT_GE(dm_res.average_wpr(), nfs_res.average_wpr());
}

TEST(EndToEnd, TraceRoundTripGivesIdenticalSimulation) {
  const auto trace = make_trace(127, 1.0);
  std::stringstream buf;
  trace::write_csv(buf, trace);
  const auto loaded = trace::read_csv(buf);

  const core::MnofPolicy policy;
  sim::SimConfig cfg;
  const auto r1 =
      sim::Simulation(cfg, policy, sim::make_grouped_predictor(trace))
          .run(trace);
  const auto r2 =
      sim::Simulation(cfg, policy, sim::make_grouped_predictor(loaded))
          .run(loaded);
  ASSERT_EQ(r1.outcomes.size(), r2.outcomes.size());
  for (std::size_t i = 0; i < r1.outcomes.size(); ++i) {
    EXPECT_NEAR(r1.outcomes[i].wallclock_s, r2.outcomes[i].wallclock_s, 1e-6);
  }
}

}  // namespace
}  // namespace cloudcr
