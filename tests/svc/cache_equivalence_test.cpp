// Caching can change latency, never an answer. For every scenario in the
// experiment registry's CI fast subset, a cold SimService run and the warm
// rerun that follows must hand back byte-identical artifact JSON (outcome
// rows included), and the warm run must be provably free: reply.cached is
// true and the service's trace-read accounting does not move — a cache hit
// never touches a trace source, which is the whole point of fronting the
// batch layer with a memoizing service.
//
// Running over the registry (rather than a hand-picked spec list) keeps
// the property honest as experiments are added: any future fast entry is
// covered the day it lands.

#include <sstream>
#include <string>
#include <unordered_set>

#include <gtest/gtest.h>

#include "api/artifact_io.hpp"
#include "api/fingerprint.hpp"
#include "report/registry.hpp"
#include "svc/service.hpp"

namespace cloudcr::svc {
namespace {

std::string canonical_json(api::RunArtifact artifact) {
  artifact.wall_time_s = 0.0;
  artifact.estimation_wall_s = 0.0;
  artifact.peak_rss_mb = 0.0;
  std::ostringstream os;
  api::write_artifact_json(os, artifact, /*include_outcomes=*/true);
  return os.str();
}

TEST(CacheEquivalenceTest, WarmRunsAreByteIdenticalAndTraceFree) {
  SimService service({.cache_capacity = 1024});
  // Entries may share specs (and specs may alias through the fingerprint);
  // track keys so the cold-run expectation stays exact.
  std::unordered_set<std::string> seen;
  std::size_t covered = 0;

  for (const report::Experiment& entry :
       report::ExperimentRegistry::instance().entries()) {
    if (!entry.fast) continue;
    for (const api::ScenarioSpec& spec : entry.specs) {
      SCOPED_TRACE(entry.id + " / " + spec.name);
      const std::string key = api::scenario_cache_key(spec);
      const bool expect_cold_hit = !seen.insert(key).second;

      const ServiceReply cold = service.run(spec);
      EXPECT_EQ(cold.cached, expect_cold_hit);

      const ServiceStats before = service.stats();
      const ServiceReply warm = service.run(spec);
      const ServiceStats after = service.stats();

      EXPECT_TRUE(warm.cached);
      EXPECT_EQ(canonical_json(*warm.artifact), canonical_json(*cold.artifact));
      // The warm run performed zero trace passes and read zero rows.
      EXPECT_EQ(after.trace_reads, before.trace_reads);
      EXPECT_EQ(after.rows_read, before.rows_read);
      EXPECT_EQ(after.cache_hits, before.cache_hits + 1);
      EXPECT_EQ(after.cache_misses, before.cache_misses);
      ++covered;
    }
  }
  // The fast subset must actually exercise the cache; an empty sweep would
  // make this suite vacuous.
  EXPECT_GT(covered, 0u);
}

// batch() answers a mixed cold/warm request with one executing pass: the
// second identical batch is all hits and does not touch any trace.
TEST(CacheEquivalenceTest, WarmBatchIsAllHits) {
  std::vector<api::ScenarioSpec> specs;
  for (const std::uint64_t seed : {21ull, 22ull, 23ull}) {
    api::ScenarioSpec spec;
    spec.name = "cache_eq_batch_" + std::to_string(seed);
    spec.policy = "formula3";
    spec.trace.seed = seed;
    spec.trace.horizon_s = 900.0;
    spec.trace.arrival_rate = 0.08;
    specs.push_back(std::move(spec));
  }

  SimService service;
  std::vector<std::string> cold_bytes;
  for (const ServiceReply& reply : service.batch(specs)) {
    EXPECT_FALSE(reply.cached);
    cold_bytes.push_back(canonical_json(*reply.artifact));
  }

  const ServiceStats before = service.stats();
  const std::vector<ServiceReply> warm = service.batch(specs);
  const ServiceStats after = service.stats();

  ASSERT_EQ(warm.size(), specs.size());
  for (std::size_t i = 0; i < warm.size(); ++i) {
    EXPECT_TRUE(warm[i].cached) << specs[i].name;
    EXPECT_EQ(canonical_json(*warm[i].artifact), cold_bytes[i])
        << specs[i].name;
  }
  EXPECT_EQ(after.trace_reads, before.trace_reads);
  EXPECT_EQ(after.rows_read, before.rows_read);
}

}  // namespace
}  // namespace cloudcr::svc
