// Fuzz-style hardening of the scenario grammar the service trusts: 10k
// seeded-random key=value soups — valid keys in shuffled order, duplicated
// keys, truncated values, junk keys, junk bytes, comments, blanks — pushed
// through parse -> serialize -> parse. The contract under fuzz:
//
//   - a soup that parses must round-trip canonically: serialize(parse(x))
//     is a fixed point, and reparsing it yields an equal spec whose cache
//     key is identical — so the service's memoization can never be split
//     or aliased by spelling;
//   - a soup that does not parse must throw std::invalid_argument whose
//     message names the offending scenario key/line (never a bare parser
//     internal), and must never crash — this suite runs under the
//     ASan+UBSan CI job like every other test;
//   - key order never matters: a valid spec's lines, shuffled, parse to
//     the same spec and the same api::scenario_cache_key.
//
// Everything is seeded; a failure prints the iteration seed and the soup.

#include <algorithm>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/fingerprint.hpp"
#include "api/scenario.hpp"

namespace cloudcr::api {
namespace {

const std::vector<std::string>& scalar_keys() {
  static const std::vector<std::string> keys = [] {
    std::vector<std::string> out = {
        "name",       "policy",
        "predictor",  "sched",
        "estimation", "placement",
        "adaptation", "shared_device",
        "storage_noise",
        "sim_seed",   "detection_delay_s",
        "cluster.hosts", "cluster.vms_per_host", "cluster.vm_memory_mb",
        "obs",
    };
    for (const char* prefix : {"trace.", "history."}) {
      for (const char* field :
           {"source", "seed", "horizon_s", "arrival_rate", "max_jobs",
            "sample_job_filter", "priority_change_midway",
            "long_service_fraction", "replay_max_task_length_s"}) {
        out.push_back(std::string(prefix) + field);
      }
    }
    return out;
  }();
  return keys;
}

std::string plausible_value(const std::string& key, std::mt19937_64& rng) {
  std::uniform_int_distribution<int> coin(0, 2);
  if (key == "estimation") {
    const char* options[] = {"replay", "full", "history"};
    return options[coin(rng)];
  }
  if (key == "placement") {
    const char* options[] = {"auto", "local", "shared"};
    return options[coin(rng)];
  }
  if (key == "adaptation") return coin(rng) != 0 ? "adaptive" : "static";
  if (key == "shared_device") {
    const char* options[] = {"local_ramdisk", "shared_nfs", "dm_nfs"};
    return options[coin(rng)];
  }
  if (key.find("sample_job_filter") != std::string::npos ||
      key.find("priority_change_midway") != std::string::npos) {
    return coin(rng) != 0 ? "true" : "false";
  }
  if (key == "obs") return "";
  if (key == "name" || key == "policy" || key == "predictor" ||
      key == "sched" || key.find("source") != std::string::npos) {
    // Free-form strings: any text is valid as long as escapes are clean.
    const char* options[] = {"alpha", "formula3", "x\\\\y"};
    return options[coin(rng)];
  }
  // Numeric fields.
  const char* options[] = {"0", "42", "1.5"};
  return options[coin(rng)];
}

std::string junk_value(std::mt19937_64& rng) {
  static const std::vector<std::string> pool = {
      "",      "  ",     "1e999",    "abc",   "1.5x", "--3",
      "1e",    "true!",  "\\q",      "0x10",  ".",    "+-1",
      "99999999999999999999999999999999999",  "1 2",  "\x01\x7f",
  };
  std::uniform_int_distribution<std::size_t> pick(0, pool.size() - 1);
  return pool[pick(rng)];
}

std::string junk_key(std::mt19937_64& rng) {
  static const std::vector<std::string> pool = {
      "unknown_key", "trace.",     "trace.bogus", "history.unknown",
      "POLICY",      " policy",    "policy ",     "cluster.",
      "trace..seed", "obs.extra",  "\x02key",     "=",
  };
  std::uniform_int_distribution<std::size_t> pick(0, pool.size() - 1);
  return pool[pick(rng)];
}

/// One random soup: mostly plausible lines, salted with duplicates, junk
/// keys/values, comments, blanks, and the occasional '='-less line.
std::string make_soup(std::mt19937_64& rng) {
  const auto& keys = scalar_keys();
  std::uniform_int_distribution<std::size_t> key_pick(0, keys.size() - 1);
  std::uniform_int_distribution<int> percent(0, 99);
  std::uniform_int_distribution<int> line_count(1, 16);

  std::vector<std::string> lines;
  const int n = line_count(rng);
  for (int i = 0; i < n; ++i) {
    const int roll = percent(rng);
    if (roll < 5) {
      lines.push_back("# comment " + std::to_string(i));
    } else if (roll < 8) {
      lines.emplace_back();
    } else if (roll < 12) {
      lines.push_back("a line without an equals sign");
    } else if (roll < 25) {
      lines.push_back(junk_key(rng) + "=" + junk_value(rng));
    } else {
      const std::string& key = keys[key_pick(rng)];
      const bool junk = percent(rng) < 30;
      lines.push_back(key + "=" +
                      (junk ? junk_value(rng) : plausible_value(key, rng)));
    }
  }
  // Duplicate an earlier line sometimes (last-wins semantics must hold).
  if (!lines.empty() && percent(rng) < 40) {
    std::uniform_int_distribution<std::size_t> dup(0, lines.size() - 1);
    lines.push_back(lines[dup(rng)]);
  }
  std::shuffle(lines.begin(), lines.end(), rng);
  std::string soup;
  for (const std::string& line : lines) soup += line + "\n";
  return soup;
}

TEST(SpecFuzzTest, TenThousandSoupsRoundTripOrThrowNamedErrors) {
  std::size_t parsed = 0;
  std::size_t rejected = 0;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    std::mt19937_64 rng(0xC0FFEEull ^ (i * 0x9E3779B97F4A7C15ull));
    const std::string soup = make_soup(rng);
    SCOPED_TRACE("iteration " + std::to_string(i) + " soup:\n" + soup);
    try {
      const ScenarioSpec spec = parse_scenario(soup);
      ++parsed;
      const std::string canon = serialize(spec);
      const ScenarioSpec again = parse_scenario(canon);
      // serialize is a fixed point of parse, and the parsed specs agree.
      EXPECT_EQ(serialize(again), canon);
      EXPECT_TRUE(spec == again);
    } catch (const std::invalid_argument& e) {
      ++rejected;
      // Every rejection names the scenario key or line that carried the
      // bad value; a client sees what to fix, never a parser internal.
      EXPECT_NE(std::string(e.what()).find("scenario"), std::string::npos)
          << "unhelpful error: " << e.what();
    }
    // Any other exception type (or a crash) fails the test run outright.
  }
  // The generator must exercise both outcomes heavily or the fuzz is
  // toothless.
  EXPECT_GT(parsed, 1000u);
  EXPECT_GT(rejected, 1000u);
}

TEST(SpecFuzzTest, KeyOrderNeverChangesSpecOrCacheKey) {
  for (std::uint64_t i = 0; i < 200; ++i) {
    std::mt19937_64 rng(0xFACADEull + i);
    // Start from a guaranteed-valid spec: parse the canonical form of a
    // default spec, then randomize a few synthetic-safe fields.
    ScenarioSpec spec;
    spec.name = "fuzz_order_" + std::to_string(i);
    spec.trace.seed = i;
    spec.trace.horizon_s = 600.0 + static_cast<double>(i);
    spec.policy = (i % 2) != 0 ? "daly" : "formula3";
    spec.sim_seed = i * 3 + 1;

    const std::string canon = serialize(spec);
    std::vector<std::string> lines;
    std::istringstream is(canon);
    for (std::string line; std::getline(is, line);) lines.push_back(line);
    std::shuffle(lines.begin(), lines.end(), rng);
    std::string shuffled;
    for (const std::string& line : lines) shuffled += line + "\n";

    const ScenarioSpec reparsed = parse_scenario(shuffled);
    SCOPED_TRACE("iteration " + std::to_string(i));
    EXPECT_TRUE(reparsed == spec);
    EXPECT_EQ(scenario_cache_key(reparsed), scenario_cache_key(spec));
  }
}

TEST(SpecFuzzTest, DuplicateKeysAreLastWins) {
  const ScenarioSpec spec = parse_scenario(
      "policy=daly\nsim_seed=1\npolicy=young\nsim_seed=9\n");
  EXPECT_EQ(spec.policy, "young");
  EXPECT_EQ(spec.sim_seed, 9u);
}

TEST(SpecFuzzTest, InvalidValuesNameTheirKey) {
  try {
    (void)parse_scenario("estimation=sometimes\n");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("scenario key 'estimation'"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("'sometimes'"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace cloudcr::api
