// The snapshot==replay house invariant, pinned end-to-end through the
// service layer: a what-if request with empty overrides — resume the base
// scenario from an engine snapshot parked at fork_at — must produce an
// artifact byte-identical (including every per-job outcome row) to a plain
// replay from time zero. The grid forks at five seeded-random points per
// scenario across every built-in source family (synthetic generator,
// native csv, slurm table), three simulation seeds, and all three
// scheduler families (fcfs, backfill:easy, preempt:ckpt), so the snapshot
// has to faithfully carry the event queue, task/controller state, RNG
// stream, storage-backend occupancy, and scheduler queue through the fork.
//
// A second suite pins the other direction: at fork_at=0 an *overridden*
// resume (policy / detection-delay swap) must equal a from-scratch run of
// the overridden spec — the snapshot changes where a what-if starts, never
// what its knobs mean.

#include <cstdint>
#include <fstream>
#include <random>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/artifact_io.hpp"
#include "api/fingerprint.hpp"
#include "api/runner.hpp"
#include "api/scenario.hpp"
#include "svc/service.hpp"
#include "trace/generator.hpp"
#include "trace/trace_io.hpp"

namespace cloudcr::svc {
namespace {

/// Canonical bytes of an artifact with the host-timing fields (the only
/// nondeterministic ones) zeroed; includes the full outcome table.
std::string canonical_json(api::RunArtifact artifact) {
  artifact.wall_time_s = 0.0;
  artifact.estimation_wall_s = 0.0;
  artifact.peak_rss_mb = 0.0;
  std::ostringstream os;
  api::write_artifact_json(os, artifact, /*include_outcomes=*/true);
  return os.str();
}

std::string write_csv_fixture(std::uint64_t seed) {
  const std::string path = testing::TempDir() + "snap_identity_" +
                           std::to_string(seed) + ".csv";
  trace::GeneratorConfig cfg;
  cfg.seed = seed + 1000;
  cfg.horizon_s = 1800.0;
  cfg.arrival_rate = 0.08;
  cfg.sample_job_filter = false;
  cfg.workload.long_service_fraction = 0.0;
  trace::write_csv_file(path, trace::TraceGenerator(cfg).generate());
  return path;
}

/// A deterministic Slurm-style table: two dozen jobs spread over the first
/// 1500 s so random fork points land before, between, and after arrivals.
std::string write_slurm_fixture(std::uint64_t seed) {
  const std::string path = testing::TempDir() + "snap_identity_" +
                           std::to_string(seed) + ".slurm";
  std::mt19937_64 rng(seed * 7919);
  std::uniform_real_distribution<double> duration(45.0, 400.0);
  std::uniform_int_distribution<int> nodes(1, 2);
  std::uniform_int_distribution<int> priority(1, 9);
  std::ofstream os(path);
  os << "JOBID SUBMIT DURATION NODES MEM_MB PRIORITY\n";
  for (int i = 0; i < 24; ++i) {
    os << (100 + i) << ' ' << (i * 62.5) << ' ' << duration(rng) << ' '
       << nodes(rng) << ' ' << 256 << ' ' << priority(rng) << '\n';
  }
  return path;
}

struct SourcePoint {
  std::string tag;
  std::string source;  ///< TraceSpec::source ("" = synthetic generator)
};

struct GridParam {
  std::uint64_t sim_seed;
  std::string sched;
};

std::vector<SourcePoint> source_points(std::uint64_t sim_seed) {
  return {
      {"synthetic", ""},
      {"csv", "csv:" + write_csv_fixture(sim_seed)},
      {"slurm", "slurm:" + write_slurm_fixture(sim_seed)},
  };
}

api::ScenarioSpec make_spec(const SourcePoint& point, const GridParam& p) {
  api::ScenarioSpec spec;
  spec.name = "snap_" + point.tag + "_s" + std::to_string(p.sim_seed);
  spec.policy = "formula3";
  spec.sched = p.sched;
  spec.sim_seed = p.sim_seed;
  // A small cluster so the backfill/preempt points actually queue work.
  spec.cluster.hosts = 4;
  spec.cluster.vms_per_host = 2;
  if (point.source.empty()) {
    spec.trace.seed = p.sim_seed;
    spec.trace.horizon_s = 1800.0;
    spec.trace.arrival_rate = 0.08;
  } else {
    spec.trace.source = point.source;
  }
  return spec;
}

class SnapshotIdentityTest : public testing::TestWithParam<GridParam> {};

TEST_P(SnapshotIdentityTest, ForkedResumeMatchesReplayFromZero) {
  const GridParam p = GetParam();
  for (const SourcePoint& point : source_points(p.sim_seed)) {
    const api::ScenarioSpec spec = make_spec(point, p);
    const std::string reference =
        canonical_json(api::ScenarioRunner(spec).run_streamed());

    SimService service;
    std::mt19937_64 rng(p.sim_seed ^ api::fnv1a64(point.tag + p.sched));
    std::uniform_real_distribution<double> fork_point(0.0, 1600.0);
    for (int fork = 0; fork < 5; ++fork) {
      WhatIfRequest request;
      request.base = spec;
      request.fork_at = fork_point(rng);
      const ServiceReply reply = service.whatif(request);
      EXPECT_EQ(canonical_json(*reply.artifact), reference)
          << point.tag << " sched='" << p.sched << "' seed=" << p.sim_seed
          << " fork_at=" << request.fork_at;
    }
    // Each fork parked one snapshot and banked the base artifact once; the
    // resumed tails never re-ran the estimation pass of a fresh replay.
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.snapshot_captures, 5u) << point.tag;
    EXPECT_EQ(stats.snapshot_resumes, 5u) << point.tag;
    EXPECT_GT(stats.snapshot_bytes, 0u) << point.tag;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SnapshotIdentityTest,
    testing::Values(GridParam{11u, "fcfs"}, GridParam{12u, "fcfs"},
                    GridParam{13u, "fcfs"},
                    GridParam{11u, "backfill:easy"},
                    GridParam{12u, "backfill:easy"},
                    GridParam{13u, "backfill:easy"},
                    GridParam{11u, "preempt:ckpt"},
                    GridParam{12u, "preempt:ckpt"},
                    GridParam{13u, "preempt:ckpt"}),
    [](const testing::TestParamInfo<GridParam>& info) {
      std::string sched = info.param.sched;
      for (char& c : sched) {
        if (c == ':') c = '_';
      }
      return sched + "_seed" + std::to_string(info.param.sim_seed);
    });

// An override applied at fork_at=0 covers the whole run, so the resumed
// artifact must match a from-scratch run of the overridden spec (modulo
// the spec echo, which a what-if reply intentionally keeps as the base).
TEST(SnapshotOverrideTest, FullSpanOverrideMatchesOverriddenSpec) {
  GridParam p{11u, "fcfs"};
  const SourcePoint synthetic{"synthetic", ""};
  const api::ScenarioSpec base = make_spec(synthetic, p);

  api::ScenarioSpec overridden = base;
  overridden.policy = "young";
  overridden.detection_delay_s = 45.0;
  api::RunArtifact reference =
      api::ScenarioRunner(overridden).run_streamed();
  reference.spec = base;  // what-if replies echo the base spec

  SimService service;
  WhatIfRequest request;
  request.base = base;
  request.fork_at = 0.0;
  request.policy = "young";
  request.detection_delay_s = 45.0;
  const ServiceReply reply = service.whatif(request);

  EXPECT_EQ(canonical_json(*reply.artifact), canonical_json(reference));
}

// Snapshots and sharded replay are mutually exclusive by contract: a
// parked engine pins live planning state the snapshot format does not
// carry, so a what-if against a shards>1 base must fail loudly — an
// invalid_argument naming the scenario key to flip — rather than park a
// snapshot that could not resume faithfully.
TEST(SnapshotOverrideTest, ShardedBaseIsRejectedWithTheScenarioKey) {
  GridParam p{11u, "fcfs"};
  const SourcePoint synthetic{"synthetic", ""};

  SimService service;
  WhatIfRequest request;
  request.base = make_spec(synthetic, p);
  request.base.shards = 2;
  request.fork_at = 900.0;
  try {
    (void)service.whatif(request);
    FAIL() << "whatif on a shards=2 base should have thrown";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("shards=1"), std::string::npos)
        << "message should name the scenario key: " << e.what();
  }
  // Plain (non-snapshot) service runs still accept sharded specs.
  api::ScenarioSpec plain = make_spec(synthetic, p);
  plain.shards = 2;
  EXPECT_NO_THROW((void)service.run(plain));
}

// Distinct override combinations at one fork resume from the *same* parked
// snapshot (one capture, many resumes) and each answer is itself cached.
TEST(SnapshotOverrideTest, OneCaptureServesManyOverrides) {
  GridParam p{12u, "fcfs"};
  const SourcePoint synthetic{"synthetic", ""};

  SimService service;
  for (const char* policy : {"young", "daly", "formula3:exact"}) {
    WhatIfRequest request;
    request.base = make_spec(synthetic, p);
    request.fork_at = 900.0;
    request.policy = policy;
    EXPECT_FALSE(service.whatif(request).cached) << policy;
    EXPECT_TRUE(service.whatif(request).cached) << policy;
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.snapshot_captures, 1u);
  EXPECT_EQ(stats.snapshot_resumes, 3u);
}

}  // namespace
}  // namespace cloudcr::svc
