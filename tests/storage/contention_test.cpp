#include "storage/contention.hpp"

#include <gtest/gtest.h>

#include "storage/calibration.hpp"

namespace cloudcr::storage {
namespace {

TEST(FlatContention, AlwaysOne) {
  const FlatContention c;
  for (std::size_t w : {std::size_t{0}, std::size_t{1}, std::size_t{5},
                        std::size_t{100}}) {
    EXPECT_DOUBLE_EQ(c.multiplier(w), 1.0);
  }
}

TEST(LinearContention, RejectsNegativeSlope) {
  EXPECT_THROW(LinearContention(-0.1), std::invalid_argument);
}

TEST(LinearContention, SingleWriterIsUnit) {
  const LinearContention c(1.0);
  EXPECT_DOUBLE_EQ(c.multiplier(1), 1.0);
  EXPECT_DOUBLE_EQ(c.multiplier(0), 1.0);  // defensive
}

TEST(LinearContention, GrowsLinearly) {
  const LinearContention c(0.5);
  EXPECT_DOUBLE_EQ(c.multiplier(2), 1.5);
  EXPECT_DOUBLE_EQ(c.multiplier(3), 2.0);
  EXPECT_DOUBLE_EQ(c.multiplier(5), 3.0);
}

TEST(LinearContention, MonotoneInWriters) {
  const LinearContention c(kNfsContentionSlope);
  double prev = 0.0;
  for (std::size_t w = 1; w <= 10; ++w) {
    const double m = c.multiplier(w);
    EXPECT_GT(m, prev);
    prev = m;
  }
}

TEST(LinearContention, DefaultSlopeTracksTable2Shape) {
  // Table 2's NFS avg row: {1.67, 2.665, 5.38, 6.25, 8.95}. With slope 1 the
  // model predicts 1.67 * X; verify the prediction stays within ~35% of the
  // measured values across the table (shape match, not exact fit).
  const LinearContention c(kNfsContentionSlope);
  const double base = 1.67;
  const auto& measured = calibration::concurrent_cost_nfs();
  for (int x = 1; x <= 5; ++x) {
    const double predicted = base * c.multiplier(static_cast<std::size_t>(x));
    const double actual = measured(static_cast<double>(x));
    EXPECT_LT(std::abs(predicted - actual) / actual, 0.35) << "X=" << x;
  }
}

}  // namespace
}  // namespace cloudcr::storage
