#include "storage/piecewise.hpp"

#include <gtest/gtest.h>

namespace cloudcr::storage {
namespace {

TEST(PiecewiseLinear, RejectsEmptyAndUnsorted) {
  EXPECT_THROW(PiecewiseLinear({}), std::invalid_argument);
  EXPECT_THROW(PiecewiseLinear({{1.0, 0.0}, {1.0, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(PiecewiseLinear({{2.0, 0.0}, {1.0, 1.0}}),
               std::invalid_argument);
}

TEST(PiecewiseLinear, SingleKnotIsConstant) {
  const PiecewiseLinear f({{5.0, 3.0}});
  EXPECT_DOUBLE_EQ(f(0.0), 3.0);
  EXPECT_DOUBLE_EQ(f(5.0), 3.0);
  EXPECT_DOUBLE_EQ(f(100.0), 3.0);
}

TEST(PiecewiseLinear, ExactAtKnots) {
  const PiecewiseLinear f({{0.0, 1.0}, {10.0, 2.0}, {20.0, 10.0}});
  EXPECT_DOUBLE_EQ(f(0.0), 1.0);
  EXPECT_DOUBLE_EQ(f(10.0), 2.0);
  EXPECT_DOUBLE_EQ(f(20.0), 10.0);
}

TEST(PiecewiseLinear, InterpolatesBetweenKnots) {
  const PiecewiseLinear f({{0.0, 0.0}, {10.0, 100.0}});
  EXPECT_DOUBLE_EQ(f(5.0), 50.0);
  EXPECT_DOUBLE_EQ(f(2.5), 25.0);
}

TEST(PiecewiseLinear, ExtrapolatesWithEdgeSlopes) {
  const PiecewiseLinear f({{10.0, 10.0}, {20.0, 30.0}});
  // Slope 2 on both sides.
  EXPECT_DOUBLE_EQ(f(0.0), -10.0);
  EXPECT_DOUBLE_EQ(f(30.0), 50.0);
}

TEST(PiecewiseLinear, MultiSegmentSelection) {
  const PiecewiseLinear f({{0.0, 0.0}, {1.0, 1.0}, {2.0, 0.0}});
  EXPECT_DOUBLE_EQ(f(0.5), 0.5);
  EXPECT_DOUBLE_EQ(f(1.5), 0.5);
}

TEST(PiecewiseLinear, KnotsAccessor) {
  const PiecewiseLinear f({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_EQ(f.knots().size(), 2u);
  EXPECT_DOUBLE_EQ(f.min_x(), 1.0);
  EXPECT_DOUBLE_EQ(f.max_x(), 3.0);
}

}  // namespace
}  // namespace cloudcr::storage
