#include "storage/calibration.hpp"

#include <gtest/gtest.h>

namespace cloudcr::storage {
namespace {

// The calibration must reproduce the paper's measurements exactly at the
// published points (Fig 7, Tables 2-5).

TEST(Calibration, Figure7LocalRamdiskEndpoints) {
  EXPECT_DOUBLE_EQ(checkpoint_cost(DeviceKind::kLocalRamdisk, 10.0), 0.016);
  EXPECT_DOUBLE_EQ(checkpoint_cost(DeviceKind::kLocalRamdisk, 240.0), 0.99);
}

TEST(Calibration, Figure7NfsEndpoints) {
  EXPECT_DOUBLE_EQ(checkpoint_cost(DeviceKind::kSharedNfs, 10.0), 0.25);
  EXPECT_DOUBLE_EQ(checkpoint_cost(DeviceKind::kSharedNfs, 240.0), 2.52);
}

TEST(Calibration, Table2SingleWriterAt160Mb) {
  // The Section 4.2.2 worked example uses Cl=0.632 and Cs=1.67 at 160 MB.
  EXPECT_DOUBLE_EQ(checkpoint_cost(DeviceKind::kLocalRamdisk, 160.0), 0.632);
  EXPECT_DOUBLE_EQ(checkpoint_cost(DeviceKind::kSharedNfs, 160.0), 1.67);
}

TEST(Calibration, DmNfsPricesLikeNfsSingleWriter) {
  for (double mem : {10.0, 80.0, 160.0, 240.0}) {
    EXPECT_DOUBLE_EQ(checkpoint_cost(DeviceKind::kDmNfs, mem),
                     checkpoint_cost(DeviceKind::kSharedNfs, mem));
  }
}

TEST(Calibration, Table4OperationTimes) {
  const struct {
    double mem;
    double seconds;
  } rows[] = {{10.3, 0.33}, {22.3, 0.42}, {42.3, 0.60}, {46.3, 0.66},
              {82.4, 1.46}, {86.4, 1.75}, {90.4, 2.09}, {94.4, 2.34},
              {162.0, 3.68}, {174.0, 4.95}, {212.0, 5.47}, {240.0, 6.83}};
  for (const auto& row : rows) {
    EXPECT_DOUBLE_EQ(checkpoint_op_time(DeviceKind::kSharedNfs, row.mem),
                     row.seconds)
        << "at " << row.mem << " MB";
  }
}

TEST(Calibration, Table5RestartCosts) {
  const struct {
    double mem;
    double a;
    double b;
  } rows[] = {{10.0, 0.71, 0.37},  {20.0, 0.84, 0.49}, {40.0, 1.23, 0.54},
              {80.0, 1.87, 0.86},  {160.0, 3.22, 1.45}, {240.0, 5.69, 2.40}};
  for (const auto& row : rows) {
    EXPECT_DOUBLE_EQ(restart_cost(MigrationType::kA, row.mem), row.a);
    EXPECT_DOUBLE_EQ(restart_cost(MigrationType::kB, row.mem), row.b);
  }
}

TEST(Calibration, MigrationAIsAlwaysDearerThanB) {
  // Table 5's structural fact: the extra shared-disk hop makes type A more
  // expensive at every memory size.
  for (double mem = 10.0; mem <= 240.0; mem += 5.0) {
    EXPECT_GT(restart_cost(MigrationType::kA, mem),
              restart_cost(MigrationType::kB, mem))
        << "at " << mem << " MB";
  }
}

TEST(Calibration, CheckpointCostsGrowWithMemory) {
  for (DeviceKind kind :
       {DeviceKind::kLocalRamdisk, DeviceKind::kSharedNfs}) {
    double prev = 0.0;
    for (double mem = 10.0; mem <= 240.0; mem += 10.0) {
      const double c = checkpoint_cost(kind, mem);
      EXPECT_GT(c, prev) << device_name(kind) << " at " << mem;
      prev = c;
    }
  }
}

TEST(Calibration, LocalCheaperThanNfsPerCheckpoint) {
  for (double mem = 10.0; mem <= 240.0; mem += 10.0) {
    EXPECT_LT(checkpoint_cost(DeviceKind::kLocalRamdisk, mem),
              checkpoint_cost(DeviceKind::kSharedNfs, mem));
  }
}

TEST(Calibration, SharedOpTimeExceedsWallclockCost) {
  // Table 4 operation times are larger than the Fig 7 wall-clock increments:
  // the NFS server stays busy longer than the task is blocked.
  for (double mem = 20.0; mem <= 240.0; mem += 20.0) {
    EXPECT_GE(checkpoint_op_time(DeviceKind::kSharedNfs, mem),
              checkpoint_cost(DeviceKind::kSharedNfs, mem));
  }
}

TEST(Calibration, MigrationForDevice) {
  EXPECT_EQ(migration_for_device(DeviceKind::kLocalRamdisk),
            MigrationType::kA);
  EXPECT_EQ(migration_for_device(DeviceKind::kSharedNfs), MigrationType::kB);
  EXPECT_EQ(migration_for_device(DeviceKind::kDmNfs), MigrationType::kB);
}

TEST(Calibration, DeviceNames) {
  EXPECT_STREQ(device_name(DeviceKind::kLocalRamdisk), "local-ramdisk");
  EXPECT_STREQ(device_name(DeviceKind::kSharedNfs), "nfs");
  EXPECT_STREQ(device_name(DeviceKind::kDmNfs), "dm-nfs");
  EXPECT_STREQ(migration_name(MigrationType::kA), "A");
  EXPECT_STREQ(migration_name(MigrationType::kB), "B");
}

TEST(Calibration, ConcurrentCostTablesMatchPaper) {
  EXPECT_DOUBLE_EQ(calibration::concurrent_cost_nfs()(1.0), 1.67);
  EXPECT_DOUBLE_EQ(calibration::concurrent_cost_nfs()(5.0), 8.95);
  EXPECT_DOUBLE_EQ(calibration::concurrent_cost_dmnfs()(1.0), 1.67);
  EXPECT_DOUBLE_EQ(calibration::concurrent_cost_dmnfs()(5.0), 1.74);
  EXPECT_DOUBLE_EQ(calibration::concurrent_cost_local_ramdisk()(1.0), 0.632);
}

}  // namespace
}  // namespace cloudcr::storage
