#include "storage/backend.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace cloudcr::storage {
namespace {

TEST(LocalRamdiskBackend, PricesFromCalibrationWithoutNoise) {
  LocalRamdiskBackend b;
  const auto t = b.begin_checkpoint(160.0, 3);
  EXPECT_DOUBLE_EQ(t.cost, 0.632);
  EXPECT_DOUBLE_EQ(t.op_time, t.cost);
  EXPECT_EQ(t.server, 3u);  // data lands on the writing host
  EXPECT_EQ(b.active_ops(), 1u);
  b.end_checkpoint(t.op_id);
  EXPECT_EQ(b.active_ops(), 0u);
}

TEST(LocalRamdiskBackend, NoContentionUnderParallelWriters) {
  LocalRamdiskBackend b;
  std::vector<CheckpointTicket> tickets;
  for (int i = 0; i < 5; ++i) tickets.push_back(b.begin_checkpoint(160.0, 0));
  for (const auto& t : tickets) EXPECT_DOUBLE_EQ(t.cost, 0.632);
}

TEST(LocalRamdiskBackend, EndIsIdempotent) {
  LocalRamdiskBackend b;
  const auto t = b.begin_checkpoint(10.0, 0);
  b.end_checkpoint(t.op_id);
  b.end_checkpoint(t.op_id);  // no effect
  b.end_checkpoint(9999);     // unknown id ignored
  EXPECT_EQ(b.active_ops(), 0u);
}

TEST(SharedNfsBackend, CostScalesWithParallelDegree) {
  SharedNfsBackend b;
  const auto t1 = b.begin_checkpoint(160.0, 0);
  EXPECT_DOUBLE_EQ(t1.cost, 1.67);
  const auto t2 = b.begin_checkpoint(160.0, 1);
  EXPECT_DOUBLE_EQ(t2.cost, 1.67 * 2.0);  // second concurrent writer
  const auto t3 = b.begin_checkpoint(160.0, 2);
  EXPECT_DOUBLE_EQ(t3.cost, 1.67 * 3.0);
  b.end_checkpoint(t1.op_id);
  b.end_checkpoint(t2.op_id);
  const auto t4 = b.begin_checkpoint(160.0, 3);
  EXPECT_DOUBLE_EQ(t4.cost, 1.67 * 2.0);  // back to two writers
}

TEST(SharedNfsBackend, OpTimeScalesWithContentionToo) {
  SharedNfsBackend b;
  const auto t1 = b.begin_checkpoint(162.0, 0);
  EXPECT_DOUBLE_EQ(t1.op_time, 3.68);
  const auto t2 = b.begin_checkpoint(162.0, 1);
  EXPECT_DOUBLE_EQ(t2.op_time, 3.68 * 2.0);
}

TEST(SharedNfsBackend, RestartUsesMigrationB) {
  SharedNfsBackend b;
  EXPECT_DOUBLE_EQ(b.restart_cost(160.0), 1.45);
}

TEST(LocalRamdiskBackend, RestartUsesMigrationA) {
  LocalRamdiskBackend b;
  EXPECT_DOUBLE_EQ(b.restart_cost(160.0), 3.22);
}

TEST(DmNfsBackend, RequiresServers) {
  stats::Rng rng(1);
  EXPECT_THROW(DmNfsBackend(0, rng), std::invalid_argument);
}

TEST(DmNfsBackend, SpreadsLoadAcrossServers) {
  stats::Rng rng(2);
  DmNfsBackend b(32, rng);
  std::vector<CheckpointTicket> tickets;
  for (int i = 0; i < 5; ++i) tickets.push_back(b.begin_checkpoint(160.0, 0));
  // With 32 servers and 5 writers, the expected max per-server load is ~1;
  // at minimum the total across servers must equal the ops in flight.
  std::size_t total = 0;
  for (std::size_t s = 0; s < b.server_count(); ++s) total += b.server_load(s);
  EXPECT_EQ(total, 5u);
  EXPECT_EQ(b.active_ops(), 5u);
}

TEST(DmNfsBackend, CollisionFreeWritersPriceAsSingle) {
  stats::Rng rng(3);
  DmNfsBackend b(1000, rng);  // collisions essentially impossible
  for (int i = 0; i < 5; ++i) {
    const auto t = b.begin_checkpoint(160.0, 0);
    EXPECT_DOUBLE_EQ(t.cost, 1.67);
  }
}

TEST(DmNfsBackend, SameServerWritersContend) {
  stats::Rng rng(4);
  DmNfsBackend b(1, rng);  // force every write onto one server
  const auto t1 = b.begin_checkpoint(160.0, 0);
  const auto t2 = b.begin_checkpoint(160.0, 0);
  EXPECT_DOUBLE_EQ(t1.cost, 1.67);
  EXPECT_DOUBLE_EQ(t2.cost, 1.67 * 2.0);
}

TEST(DmNfsBackend, EndReleasesTheRightServer) {
  stats::Rng rng(5);
  DmNfsBackend b(4, rng);
  const auto t = b.begin_checkpoint(160.0, 0);
  EXPECT_EQ(b.server_load(t.server), 1u);
  b.end_checkpoint(t.op_id);
  EXPECT_EQ(b.server_load(t.server), 0u);
  EXPECT_EQ(b.active_ops(), 0u);
}

TEST(Backend, NoiseStaysWithinConfiguredBand) {
  stats::Rng rng(6);
  LocalRamdiskBackend b(&rng, 0.10);
  for (int i = 0; i < 1000; ++i) {
    const auto t = b.begin_checkpoint(160.0, 0);
    EXPECT_GE(t.cost, 0.632 * 0.9 - 1e-12);
    EXPECT_LE(t.cost, 0.632 * 1.1 + 1e-12);
    b.end_checkpoint(t.op_id);
  }
}

TEST(Backend, FactoryProducesRequestedKinds) {
  stats::Rng rng(7);
  EXPECT_EQ(make_backend(DeviceKind::kLocalRamdisk, rng)->kind(),
            DeviceKind::kLocalRamdisk);
  EXPECT_EQ(make_backend(DeviceKind::kSharedNfs, rng)->kind(),
            DeviceKind::kSharedNfs);
  EXPECT_EQ(make_backend(DeviceKind::kDmNfs, rng)->kind(),
            DeviceKind::kDmNfs);
}

TEST(Backend, MigrationTypeDerivedFromKind) {
  stats::Rng rng(8);
  EXPECT_EQ(make_backend(DeviceKind::kLocalRamdisk, rng)->migration_type(),
            MigrationType::kA);
  EXPECT_EQ(make_backend(DeviceKind::kDmNfs, rng)->migration_type(),
            MigrationType::kB);
}

}  // namespace
}  // namespace cloudcr::storage
