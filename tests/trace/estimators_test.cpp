#include "trace/estimators.hpp"

#include <gtest/gtest.h>

#include "trace/generator.hpp"

namespace cloudcr::trace {
namespace {

Trace controlled_trace() {
  // Hand-built trace: priority 1 tasks fail often; priority 12 never.
  Trace trace;
  JobRecord job;
  job.id = 1;
  job.structure = JobStructure::kBagOfTasks;

  TaskRecord harassed;
  harassed.priority = 1;
  harassed.length_s = 100.0;
  harassed.failure_dates = {20.0, 40.0};  // intervals 20, 20, tail 60

  TaskRecord safe;
  safe.priority = 12;
  safe.length_s = 400.0;  // one censored interval of 400

  job.tasks = {harassed, safe};
  trace.jobs.push_back(job);
  return trace;
}

TEST(Estimators, MnofAndMtbfOnControlledInput) {
  const auto trace = controlled_trace();
  const auto groups = estimate_by_priority(trace);
  EXPECT_EQ(groups[0].task_count, 1u);
  EXPECT_DOUBLE_EQ(groups[0].mnof, 2.0);
  EXPECT_NEAR(groups[0].mtbf, (20.0 + 20.0 + 60.0) / 3.0, 1e-12);
  EXPECT_EQ(groups[11].task_count, 1u);
  EXPECT_DOUBLE_EQ(groups[11].mnof, 0.0);
  EXPECT_DOUBLE_EQ(groups[11].mtbf, 400.0);
}

TEST(Estimators, LengthLimitExcludesLongTasks) {
  const auto trace = controlled_trace();
  const auto groups = estimate_by_priority(trace, 200.0);
  EXPECT_EQ(groups[0].task_count, 1u);   // 100 s task kept
  EXPECT_EQ(groups[11].task_count, 0u);  // 400 s task dropped
}

TEST(Estimators, StructureFilterSeparatesStAndBot) {
  Trace trace = controlled_trace();
  JobRecord st_job;
  st_job.id = 2;
  st_job.structure = JobStructure::kSequentialTasks;
  TaskRecord t;
  t.priority = 1;
  t.length_s = 50.0;
  t.failure_dates = {10.0};
  st_job.tasks = {t};
  trace.jobs.push_back(st_job);

  const auto bot = estimate_by_priority(trace, kNoLengthLimit,
                                        StructureFilter::kBagOfTasksOnly);
  const auto st = estimate_by_priority(trace, kNoLengthLimit,
                                       StructureFilter::kSequentialOnly);
  EXPECT_EQ(bot[0].task_count, 1u);
  EXPECT_EQ(st[0].task_count, 1u);
  EXPECT_DOUBLE_EQ(st[0].mnof, 1.0);
}

TEST(Estimators, OverallAggregatesGroups) {
  const auto trace = controlled_trace();
  const auto all = estimate_overall(trace);
  EXPECT_EQ(all.task_count, 2u);
  EXPECT_DOUBLE_EQ(all.mnof, 1.0);  // 2 failures over 2 tasks
}

TEST(Estimators, IntervalsByPriorityCollectsEverything) {
  const auto trace = controlled_trace();
  const auto by_prio = intervals_by_priority(trace);
  ASSERT_TRUE(by_prio.contains(1));
  ASSERT_TRUE(by_prio.contains(12));
  EXPECT_EQ(by_prio.at(1).size(), 3u);
  EXPECT_EQ(by_prio.at(12).size(), 1u);
}

TEST(Estimators, FailureIntervalsExcludeCensoredTails) {
  const auto trace = controlled_trace();
  const auto gaps = failure_intervals(trace);
  // Only the two real gaps of the harassed task; no censored tails.
  ASSERT_EQ(gaps.size(), 2u);
  EXPECT_DOUBLE_EQ(gaps[0], 20.0);
  EXPECT_DOUBLE_EQ(gaps[1], 20.0);
}

TEST(Estimators, UninterruptedPoolIncludesCensoredTails) {
  const auto trace = controlled_trace();
  // harassed: 20, 20, 60 (tail); safe: 400 (tail) -> four intervals total.
  const auto pool = uninterrupted_interval_pool(trace);
  EXPECT_EQ(pool.size(), 4u);
  const auto short_pool = uninterrupted_interval_pool(trace, 100.0);
  EXPECT_EQ(short_pool.size(), 3u);  // the 400 s tail is dropped
}

TEST(Estimators, FailureIntervalsRespectLimit) {
  Trace trace;
  JobRecord job;
  TaskRecord t;
  t.priority = 1;
  t.length_s = 5000.0;
  t.failure_dates = {100.0, 3000.0};  // gaps 100 and 2900
  job.tasks = {t};
  trace.jobs.push_back(job);
  EXPECT_EQ(failure_intervals(trace).size(), 2u);
  EXPECT_EQ(failure_intervals(trace, 1000.0).size(), 1u);
}

TEST(Estimators, OracleValuesMatchTaskHistory) {
  const auto trace = controlled_trace();
  const auto& harassed = trace.jobs[0].tasks[0];
  const auto& safe = trace.jobs[0].tasks[1];
  EXPECT_DOUBLE_EQ(oracle_mnof(harassed), 2.0);
  EXPECT_NEAR(oracle_mtbf(harassed), 100.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(oracle_mnof(safe), 0.0);
  EXPECT_DOUBLE_EQ(oracle_mtbf(safe), 400.0);
}

// The headline structural property (Table 7): on a generated trace, MTBF
// inflates sharply when long tasks enter the estimation while MNOF moves far
// less. This is the fact that makes Formula (3) robust and Young's fragile.
TEST(Estimators, Table7Structure_MtbfInflatesMnofStays) {
  GeneratorConfig cfg;
  cfg.seed = 31;
  cfg.horizon_s = 86400.0;
  cfg.arrival_rate = 0.1;
  cfg.sample_job_filter = false;
  const auto trace = TraceGenerator(cfg).generate();

  const auto short_groups = estimate_by_priority(trace, 1000.0);
  const auto all_groups = estimate_by_priority(trace, kNoLengthLimit);

  // Aggregate over the busy priorities to avoid small-sample noise.
  double short_mtbf = 0.0, all_mtbf = 0.0;
  double short_mnof = 0.0, all_mnof = 0.0;
  int cells = 0;
  for (int p : {1, 2, 3}) {
    const auto& s = short_groups[static_cast<std::size_t>(p - 1)];
    const auto& a = all_groups[static_cast<std::size_t>(p - 1)];
    if (s.task_count < 50 || a.task_count < 50) continue;
    short_mtbf += s.mtbf;
    all_mtbf += a.mtbf;
    short_mnof += s.mnof;
    all_mnof += a.mnof;
    ++cells;
  }
  ASSERT_GT(cells, 0);
  // MTBF at least doubles with the unrestricted set...
  EXPECT_GT(all_mtbf, 2.0 * short_mtbf);
  // ...while MNOF grows by far less than MTBF does (relative inflation).
  const double mtbf_inflation = all_mtbf / short_mtbf;
  const double mnof_inflation = all_mnof / short_mnof;
  EXPECT_LT(mnof_inflation, 0.5 * mtbf_inflation);
}

}  // namespace
}  // namespace cloudcr::trace
