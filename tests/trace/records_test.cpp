#include "trace/records.hpp"

#include <gtest/gtest.h>

namespace cloudcr::trace {
namespace {

TaskRecord make_task(double length, std::vector<double> failures) {
  TaskRecord t;
  t.length_s = length;
  t.failure_dates = std::move(failures);
  return t;
}

TEST(TaskRecord, FailuresWithinCountsInclusive) {
  const auto t = make_task(100.0, {10.0, 50.0, 99.0, 150.0});
  EXPECT_EQ(t.failures_within(100.0), 3u);
  EXPECT_EQ(t.failures_within(50.0), 2u);  // inclusive upper bound
  EXPECT_EQ(t.failures_within(9.0), 0u);
  EXPECT_EQ(t.failures_within(1000.0), 4u);
}

TEST(TaskRecord, UninterruptedIntervalsWithTrailingCensor) {
  const auto t = make_task(100.0, {10.0, 30.0});
  const auto intervals = t.uninterrupted_intervals(100.0);
  ASSERT_EQ(intervals.size(), 3u);
  EXPECT_DOUBLE_EQ(intervals[0], 10.0);
  EXPECT_DOUBLE_EQ(intervals[1], 20.0);
  EXPECT_DOUBLE_EQ(intervals[2], 70.0);  // censored tail
}

TEST(TaskRecord, NoFailuresYieldsFullLengthInterval) {
  const auto t = make_task(420.0, {});
  const auto intervals = t.uninterrupted_intervals(420.0);
  ASSERT_EQ(intervals.size(), 1u);
  EXPECT_DOUBLE_EQ(intervals[0], 420.0);
}

TEST(TaskRecord, IntervalsIgnoreFailuresBeyondHorizon) {
  const auto t = make_task(100.0, {40.0, 200.0});
  const auto intervals = t.uninterrupted_intervals(100.0);
  ASSERT_EQ(intervals.size(), 2u);
  EXPECT_DOUBLE_EQ(intervals[0], 40.0);
  EXPECT_DOUBLE_EQ(intervals[1], 60.0);
}

TEST(TaskRecord, FailureExactlyAtHorizonHasNoTrailingInterval) {
  const auto t = make_task(100.0, {100.0});
  const auto intervals = t.uninterrupted_intervals(100.0);
  ASSERT_EQ(intervals.size(), 1u);
  EXPECT_DOUBLE_EQ(intervals[0], 100.0);
}

TEST(TaskRecord, PriorityAtRespectsChangePoint) {
  TaskRecord t;
  t.priority = 2;
  t.priority_change_time = 50.0;
  t.new_priority = 9;
  EXPECT_TRUE(t.has_priority_change());
  EXPECT_EQ(t.priority_at(0.0), 2);
  EXPECT_EQ(t.priority_at(49.9), 2);
  EXPECT_EQ(t.priority_at(50.0), 9);
  EXPECT_EQ(t.priority_at(1000.0), 9);
}

TEST(TaskRecord, NoChangeScheduledByDefault) {
  TaskRecord t;
  t.priority = 5;
  EXPECT_FALSE(t.has_priority_change());
  EXPECT_EQ(t.priority_at(1e9), 5);
}

TEST(JobRecord, LengthAndMemoryAggregates) {
  JobRecord j;
  j.structure = JobStructure::kBagOfTasks;
  j.tasks.push_back(make_task(100.0, {}));
  j.tasks.push_back(make_task(300.0, {}));
  j.tasks[0].memory_mb = 64.0;
  j.tasks[1].memory_mb = 128.0;
  EXPECT_DOUBLE_EQ(j.total_length(), 400.0);
  EXPECT_DOUBLE_EQ(j.critical_path(), 300.0);  // BoT: longest task
  EXPECT_DOUBLE_EQ(j.max_task_memory(), 128.0);
  EXPECT_DOUBLE_EQ(j.total_memory(), 192.0);

  j.structure = JobStructure::kSequentialTasks;
  EXPECT_DOUBLE_EQ(j.critical_path(), 400.0);  // ST: sum
}

TEST(JobRecord, FailedTaskCount) {
  JobRecord j;
  j.tasks.push_back(make_task(100.0, {50.0}));
  j.tasks.push_back(make_task(100.0, {150.0}));  // fails after completion
  j.tasks.push_back(make_task(100.0, {}));
  EXPECT_EQ(j.failed_task_count(), 1u);
}

TEST(Trace, TaskCountSumsJobs) {
  Trace trace;
  trace.jobs.resize(3);
  trace.jobs[0].tasks.resize(2);
  trace.jobs[1].tasks.resize(5);
  trace.jobs[2].tasks.resize(1);
  EXPECT_EQ(trace.task_count(), 8u);
  EXPECT_EQ(trace.job_count(), 3u);
}

TEST(StructureName, Labels) {
  EXPECT_STREQ(structure_name(JobStructure::kSequentialTasks), "ST");
  EXPECT_STREQ(structure_name(JobStructure::kBagOfTasks), "BoT");
}

}  // namespace
}  // namespace cloudcr::trace
