#include "trace/generator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace cloudcr::trace {
namespace {

GeneratorConfig small_config() {
  GeneratorConfig cfg;
  cfg.seed = 7;
  cfg.horizon_s = 7200.0;  // two hours
  cfg.arrival_rate = 0.1;
  return cfg;
}

TEST(TraceGenerator, RejectsBadConfig) {
  GeneratorConfig cfg;
  cfg.arrival_rate = 0.0;
  EXPECT_THROW(TraceGenerator{cfg}, std::invalid_argument);
  GeneratorConfig cfg2;
  cfg2.horizon_s = -1.0;
  EXPECT_THROW(TraceGenerator{cfg2}, std::invalid_argument);
}

TEST(TraceGenerator, DeterministicForSameSeed) {
  const TraceGenerator g1(small_config());
  const TraceGenerator g2(small_config());
  const auto t1 = g1.generate();
  const auto t2 = g2.generate();
  ASSERT_EQ(t1.job_count(), t2.job_count());
  for (std::size_t j = 0; j < t1.jobs.size(); ++j) {
    EXPECT_DOUBLE_EQ(t1.jobs[j].arrival_s, t2.jobs[j].arrival_s);
    ASSERT_EQ(t1.jobs[j].tasks.size(), t2.jobs[j].tasks.size());
    for (std::size_t i = 0; i < t1.jobs[j].tasks.size(); ++i) {
      EXPECT_EQ(t1.jobs[j].tasks[i].failure_dates,
                t2.jobs[j].tasks[i].failure_dates);
    }
  }
}

TEST(TraceGenerator, DifferentSeedsDiffer) {
  auto cfg1 = small_config();
  auto cfg2 = small_config();
  cfg2.seed = 8;
  const auto t1 = TraceGenerator(cfg1).generate();
  const auto t2 = TraceGenerator(cfg2).generate();
  // Nearly impossible to coincide.
  bool differs = t1.job_count() != t2.job_count();
  if (!differs && t1.job_count() > 0) {
    differs = t1.jobs[0].arrival_s != t2.jobs[0].arrival_s;
  }
  EXPECT_TRUE(differs);
}

TEST(TraceGenerator, ArrivalsSortedWithinHorizon) {
  const auto trace = TraceGenerator(small_config()).generate();
  double prev = 0.0;
  for (const auto& job : trace.jobs) {
    EXPECT_GE(job.arrival_s, prev);
    EXPECT_LE(job.arrival_s, trace.horizon_s);
    prev = job.arrival_s;
  }
}

TEST(TraceGenerator, SampleJobFilterKeepsFailingJobs) {
  auto cfg = small_config();
  cfg.sample_job_filter = true;
  const auto trace = TraceGenerator(cfg).generate();
  ASSERT_GT(trace.job_count(), 0u);
  for (const auto& job : trace.jobs) {
    EXPECT_GE(2 * job.failed_task_count(), job.tasks.size())
        << "job " << job.id;
  }
}

TEST(TraceGenerator, FilterOffKeepsMoreJobs) {
  auto with = small_config();
  with.sample_job_filter = true;
  auto without = small_config();
  without.sample_job_filter = false;
  EXPECT_GT(TraceGenerator(without).generate().job_count(),
            TraceGenerator(with).generate().job_count());
}

TEST(TraceGenerator, JobIdsAreUniqueAndTasksLinked) {
  const auto trace = TraceGenerator(small_config()).generate();
  std::set<std::uint64_t> ids;
  for (const auto& job : trace.jobs) {
    EXPECT_TRUE(ids.insert(job.id).second);
    for (const auto& task : job.tasks) {
      EXPECT_EQ(task.job_id, job.id);
    }
  }
}

TEST(TraceGenerator, MaxJobsCapRespected) {
  auto cfg = small_config();
  cfg.horizon_s = 864000.0;
  cfg.max_jobs = 25;
  const auto trace = TraceGenerator(cfg).generate();
  EXPECT_LE(trace.job_count(), 25u);
}

TEST(TraceGenerator, PriorityChangeMidwaySetsAllTasks) {
  auto cfg = small_config();
  cfg.priority_change_midway = true;
  cfg.sample_job_filter = false;
  const auto trace = TraceGenerator(cfg).generate();
  ASSERT_GT(trace.job_count(), 0u);
  for (const auto& job : trace.jobs) {
    for (const auto& task : job.tasks) {
      ASSERT_TRUE(task.has_priority_change());
      EXPECT_DOUBLE_EQ(task.priority_change_time, 0.5 * task.length_s);
      EXPECT_GE(task.new_priority, kMinPriority);
      EXPECT_LE(task.new_priority, kMaxPriority);
    }
  }
}

TEST(TraceGenerator, NoPriorityChangeByDefault) {
  const auto trace = TraceGenerator(small_config()).generate();
  for (const auto& job : trace.jobs) {
    for (const auto& task : job.tasks) {
      EXPECT_FALSE(task.has_priority_change());
    }
  }
}

TEST(TraceGenerator, FailureDatesSorted) {
  const auto trace = TraceGenerator(small_config()).generate();
  for (const auto& job : trace.jobs) {
    for (const auto& task : job.tasks) {
      EXPECT_TRUE(std::is_sorted(task.failure_dates.begin(),
                                 task.failure_dates.end()));
    }
  }
}

TEST(TraceGenerator, ArrivalRateMatchesExpectation) {
  GeneratorConfig cfg;
  cfg.seed = 11;
  cfg.arrival_rate = 0.05;
  cfg.horizon_s = 100000.0;
  cfg.sample_job_filter = false;
  const auto trace = TraceGenerator(cfg).generate();
  // Expected ~5000 arrivals; Poisson sd ~71.
  EXPECT_NEAR(static_cast<double>(trace.job_count()), 5000.0, 300.0);
}

}  // namespace
}  // namespace cloudcr::trace
