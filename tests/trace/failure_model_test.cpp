#include "trace/failure_model.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace cloudcr::trace {
namespace {

TEST(FailureModel, RejectsBadPriority) {
  const auto m = FailureModel::google_calibration();
  EXPECT_THROW((void)m.profile(0), std::out_of_range);
  EXPECT_THROW((void)m.profile(13), std::out_of_range);
  stats::Rng rng(1);
  EXPECT_THROW((void)m.sample_failure_dates(0, rng), std::out_of_range);
}

TEST(FailureModel, DatesAreSortedAndPositive) {
  const auto m = FailureModel::google_calibration();
  stats::Rng rng(2);
  for (int p = 1; p <= 12; ++p) {
    for (int i = 0; i < 100; ++i) {
      const auto dates = m.sample_failure_dates(p, rng);
      EXPECT_TRUE(std::is_sorted(dates.begin(), dates.end()));
      for (double d : dates) EXPECT_GT(d, 0.0);
    }
  }
}

TEST(FailureModel, SafePrioritiesRarelyFail) {
  const auto m = FailureModel::google_calibration();
  stats::Rng rng(3);
  // Priorities 4, 8, 11, 12 are nearly safe in the calibration.
  for (int p : {4, 8, 11, 12}) {
    int harassed = 0;
    for (int i = 0; i < 2000; ++i) {
      if (!m.sample_failure_dates(p, rng).empty()) ++harassed;
    }
    EXPECT_LT(harassed, 120) << "priority " << p;
  }
}

TEST(FailureModel, Priority10IsChurnHeavy) {
  const auto m = FailureModel::google_calibration();
  stats::Rng rng(4);
  std::size_t total = 0;
  constexpr int kN = 2000;
  for (int i = 0; i < kN; ++i) {
    total += m.sample_failure_dates(10, rng).size();
  }
  // Calibration: ph=0.95, mean burst 10 -> ~9.5 kills per task.
  EXPECT_NEAR(static_cast<double>(total) / kN, 9.5, 1.0);
}

TEST(FailureModel, EmpiricalKillCountMatchesClosedForm) {
  const auto m = FailureModel::google_calibration();
  for (int p : {1, 2, 7, 10}) {
    stats::Rng rng(100 + static_cast<unsigned>(p));
    const double horizon = 1000.0;
    std::size_t total = 0;
    constexpr int kN = 20000;
    for (int i = 0; i < kN; ++i) {
      const auto dates = m.sample_failure_dates(p, rng);
      total += static_cast<std::size_t>(
          std::upper_bound(dates.begin(), dates.end(), horizon) -
          dates.begin());
    }
    const double empirical = static_cast<double>(total) / kN;
    const double analytic = m.expected_failures(p, horizon);
    EXPECT_NEAR(empirical, analytic, 0.05 * std::max(1.0, analytic))
        << "priority " << p;
  }
}

TEST(FailureModel, ExpectedFailuresMonotoneInHorizon) {
  const auto m = FailureModel::google_calibration();
  for (int p = 1; p <= 12; ++p) {
    double prev = -1.0;
    for (double h : {0.0, 100.0, 500.0, 1000.0, 5000.0, 50000.0}) {
      const double e = m.expected_failures(p, h);
      EXPECT_GE(e, prev) << "priority " << p << " horizon " << h;
      prev = e;
    }
  }
}

TEST(FailureModel, ExpectedFailuresSaturatesAtBurstMean) {
  // For huge horizons E(Y) -> p_harassed * mean_kills (every kill lands).
  const auto m = FailureModel::google_calibration();
  const auto& prof = m.profile(1);
  const double e = m.expected_failures(1, 1e9);
  EXPECT_NEAR(e, prof.p_harassed * prof.mean_kills, 0.01);
}

TEST(FailureModel, ZeroHorizonHasNoFailures) {
  const auto m = FailureModel::google_calibration();
  EXPECT_DOUBLE_EQ(m.expected_failures(1, 0.0), 0.0);
}

TEST(FailureModel, PriorityChangeSplitsProcess) {
  const auto m = FailureModel::google_calibration();
  stats::Rng rng(7);
  // From churn-heavy (10) to safe (12): after the change, few events.
  int after = 0, before = 0;
  for (int i = 0; i < 500; ++i) {
    const auto dates =
        m.sample_failure_dates_with_change(10, 12, 500.0, rng);
    EXPECT_TRUE(std::is_sorted(dates.begin(), dates.end()));
    for (double d : dates) {
      (d < 500.0 ? before : after)++;
    }
  }
  EXPECT_GT(before, 10 * std::max(after, 1));
}

TEST(FailureModel, PriorityChangeRejectsNegativeTime) {
  const auto m = FailureModel::google_calibration();
  stats::Rng rng(8);
  EXPECT_THROW((void)m.sample_failure_dates_with_change(1, 2, -1.0, rng),
               std::invalid_argument);
}

TEST(FailureModel, LowPrioritiesFailMoreThanMidPriorities) {
  const auto m = FailureModel::google_calibration();
  // Structural fact from Fig 4: priority 1 fails more than priority 9
  // (priority 10 is the deliberate exception).
  EXPECT_GT(m.expected_failures(1, 2000.0), m.expected_failures(9, 2000.0));
  EXPECT_GT(m.expected_failures(2, 2000.0), m.expected_failures(9, 2000.0));
}

class FailureModelPrioritySweep : public ::testing::TestWithParam<int> {};

TEST_P(FailureModelPrioritySweep, DeterministicGivenSeed) {
  const auto m = FailureModel::google_calibration();
  stats::Rng a(99), b(99);
  const auto da = m.sample_failure_dates(GetParam(), a);
  const auto db = m.sample_failure_dates(GetParam(), b);
  EXPECT_EQ(da, db);
}

TEST_P(FailureModelPrioritySweep, ProfileParametersAreSane) {
  const auto m = FailureModel::google_calibration();
  const auto& prof = m.profile(GetParam());
  EXPECT_GE(prof.p_harassed, 0.0);
  EXPECT_LE(prof.p_harassed, 1.0);
  EXPECT_GE(prof.mean_kills, 1.0);
  EXPECT_GT(prof.mean_gap_s, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllPriorities, FailureModelPrioritySweep,
                         ::testing::Range(1, 13));

}  // namespace
}  // namespace cloudcr::trace
