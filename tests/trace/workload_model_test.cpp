#include "trace/workload_model.hpp"

#include <gtest/gtest.h>

namespace cloudcr::trace {
namespace {

TEST(WorkloadModel, RejectsBadConfig) {
  WorkloadConfig bad;
  bad.bot_fraction = 1.5;
  EXPECT_THROW(WorkloadModel{bad}, std::invalid_argument);

  WorkloadConfig bad2;
  bad2.max_tasks_per_job = 1;
  EXPECT_THROW(WorkloadModel{bad2}, std::invalid_argument);

  WorkloadConfig bad3;
  bad3.priority_weights.fill(0.0);
  EXPECT_THROW(WorkloadModel{bad3}, std::invalid_argument);

  WorkloadConfig bad4;
  bad4.priority_weights[3] = -1.0;
  EXPECT_THROW(WorkloadModel{bad4}, std::invalid_argument);
}

TEST(WorkloadModel, TaskFieldsWithinConfiguredBounds) {
  const WorkloadModel m;
  const auto& cfg = m.config();
  stats::Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    const auto t = m.sample_task(JobStructure::kSequentialTasks, rng);
    EXPECT_GE(t.length_s, cfg.min_length_s);
    if (t.length_s > cfg.max_length_s) {
      // Long-running service task: lives in the service band instead.
      EXPECT_GE(t.length_s, cfg.service_min_s);
      EXPECT_LE(t.length_s, cfg.service_max_s);
    }
    EXPECT_GE(t.memory_mb, cfg.min_memory_mb);
    EXPECT_LE(t.memory_mb, cfg.max_memory_mb);
    EXPECT_GE(t.priority, kMinPriority);
    EXPECT_LE(t.priority, kMaxPriority);
  }
}

TEST(WorkloadModel, ServiceTaskFrequencyMatchesConfig) {
  const WorkloadModel m;
  stats::Rng rng(11);
  int services = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    if (m.sample_task(JobStructure::kSequentialTasks, rng).length_s >=
        m.config().service_min_s) {
      ++services;
    }
  }
  EXPECT_NEAR(static_cast<double>(services) / kN,
              m.config().long_service_fraction, 0.005);
}

TEST(WorkloadModel, ServiceTasksCanBeDisabled) {
  WorkloadConfig cfg;
  cfg.long_service_fraction = 0.0;
  const WorkloadModel m(cfg);
  stats::Rng rng(12);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LE(m.sample_task(JobStructure::kBagOfTasks, rng).length_s,
              cfg.max_length_s);
  }
}

TEST(WorkloadModel, RejectsBadServiceRange) {
  WorkloadConfig cfg;
  cfg.long_service_fraction = 2.0;
  EXPECT_THROW(WorkloadModel{cfg}, std::invalid_argument);
  WorkloadConfig cfg2;
  cfg2.service_min_s = 100.0;
  cfg2.service_max_s = 50.0;
  EXPECT_THROW(WorkloadModel{cfg2}, std::invalid_argument);
}

TEST(WorkloadModel, MostTasksAreShort) {
  // Fig 8(b)/the paper's characterization: the bulk of tasks run minutes.
  const WorkloadModel m;
  stats::Rng rng(2);
  int below_1000 = 0;
  constexpr int kN = 10000;
  for (int i = 0; i < kN; ++i) {
    if (m.sample_task(JobStructure::kSequentialTasks, rng).length_s <= 1000.0) {
      ++below_1000;
    }
  }
  EXPECT_GT(below_1000, kN * 0.6);
}

TEST(WorkloadModel, BotTasksUseLessMemoryOnAverage) {
  const WorkloadModel m;
  stats::Rng rng(3);
  double st = 0.0, bot = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    st += m.sample_task(JobStructure::kSequentialTasks, rng).memory_mb;
    bot += m.sample_task(JobStructure::kBagOfTasks, rng).memory_mb;
  }
  EXPECT_LT(bot, st * 0.8);
}

TEST(WorkloadModel, BotFractionRespected) {
  WorkloadConfig cfg;
  cfg.bot_fraction = 0.3;
  const WorkloadModel m(cfg);
  stats::Rng rng(4);
  int bot = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    if (m.sample_job(rng).structure == JobStructure::kBagOfTasks) ++bot;
  }
  EXPECT_NEAR(static_cast<double>(bot) / kN, 0.3, 0.02);
}

TEST(WorkloadModel, JobTaskCountsWithinCaps) {
  const WorkloadModel m;
  stats::Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const auto job = m.sample_job(rng);
    EXPECT_GE(job.tasks.size(), 1u);
    EXPECT_LE(job.tasks.size(), m.config().max_tasks_per_job);
    if (job.structure == JobStructure::kBagOfTasks) {
      EXPECT_GE(job.tasks.size(), 2u);
    }
  }
}

TEST(WorkloadModel, JobTasksShareOnePriority) {
  const WorkloadModel m;
  stats::Rng rng(6);
  for (int i = 0; i < 500; ++i) {
    const auto job = m.sample_job(rng);
    for (const auto& t : job.tasks) {
      EXPECT_EQ(t.priority, job.tasks.front().priority);
    }
  }
}

TEST(WorkloadModel, TaskIndicesAreSequential) {
  const WorkloadModel m;
  stats::Rng rng(7);
  const auto job = m.sample_job(rng);
  for (std::size_t i = 0; i < job.tasks.size(); ++i) {
    EXPECT_EQ(job.tasks[i].index_in_job, i);
  }
}

TEST(WorkloadModel, PriorityFrequenciesTrackWeights) {
  WorkloadConfig cfg;
  cfg.priority_weights.fill(0.0);
  cfg.priority_weights[0] = 0.5;   // priority 1
  cfg.priority_weights[9] = 0.5;   // priority 10
  const WorkloadModel m(cfg);
  stats::Rng rng(8);
  int p1 = 0, p10 = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const int p = m.sample_priority(rng);
    EXPECT_TRUE(p == 1 || p == 10);
    (p == 1 ? p1 : p10)++;
  }
  EXPECT_NEAR(static_cast<double>(p1) / kN, 0.5, 0.02);
}

TEST(WorkloadModel, DefaultPriorityMixSkewsLow) {
  const WorkloadModel m;
  stats::Rng rng(9);
  int low = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    if (m.sample_priority(rng) <= 3) ++low;
  }
  EXPECT_GT(static_cast<double>(low) / kN, 0.4);
}

}  // namespace
}  // namespace cloudcr::trace
