#include "trace/trace_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "trace/generator.hpp"

namespace cloudcr::trace {
namespace {

Trace sample_trace() {
  GeneratorConfig cfg;
  cfg.seed = 5;
  cfg.horizon_s = 3600.0;
  cfg.arrival_rate = 0.05;
  cfg.sample_job_filter = false;
  cfg.priority_change_midway = true;
  return TraceGenerator(cfg).generate();
}

TEST(TraceIo, RoundTripPreservesEverything) {
  const Trace original = sample_trace();
  ASSERT_GT(original.job_count(), 0u);

  std::stringstream buf;
  write_csv(buf, original);
  const Trace loaded = read_csv(buf);

  ASSERT_EQ(loaded.job_count(), original.job_count());
  EXPECT_DOUBLE_EQ(loaded.horizon_s, original.horizon_s);
  for (std::size_t j = 0; j < original.jobs.size(); ++j) {
    const auto& a = original.jobs[j];
    const auto& b = loaded.jobs[j];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.structure, b.structure);
    EXPECT_DOUBLE_EQ(a.arrival_s, b.arrival_s);
    ASSERT_EQ(a.tasks.size(), b.tasks.size());
    for (std::size_t i = 0; i < a.tasks.size(); ++i) {
      const auto& ta = a.tasks[i];
      const auto& tb = b.tasks[i];
      EXPECT_EQ(ta.job_id, tb.job_id);
      EXPECT_EQ(ta.index_in_job, tb.index_in_job);
      EXPECT_DOUBLE_EQ(ta.length_s, tb.length_s);
      EXPECT_DOUBLE_EQ(ta.memory_mb, tb.memory_mb);
      EXPECT_DOUBLE_EQ(ta.input_size, tb.input_size);
      EXPECT_EQ(ta.priority, tb.priority);
      EXPECT_DOUBLE_EQ(ta.priority_change_time, tb.priority_change_time);
      EXPECT_EQ(ta.new_priority, tb.new_priority);
      ASSERT_EQ(ta.failure_dates.size(), tb.failure_dates.size());
      for (std::size_t f = 0; f < ta.failure_dates.size(); ++f) {
        EXPECT_NEAR(ta.failure_dates[f], tb.failure_dates[f],
                    1e-9 * (1.0 + ta.failure_dates[f]));
      }
    }
  }
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  Trace empty;
  empty.horizon_s = 123.0;
  std::stringstream buf;
  write_csv(buf, empty);
  const Trace loaded = read_csv(buf);
  EXPECT_EQ(loaded.job_count(), 0u);
  EXPECT_DOUBLE_EQ(loaded.horizon_s, 123.0);
}

TEST(TraceIo, RejectsMissingHeader) {
  std::stringstream buf("not,a,header\n");
  EXPECT_THROW(read_csv(buf), std::runtime_error);
}

namespace {
constexpr char kTestHeader[] =
    "job_id,structure,arrival_s,task_index,length_s,memory_mb,input_size,"
    "priority,prio_change_time,new_priority,failure_dates";
}

TEST(TraceIo, RejectsWrongFieldCount) {
  std::stringstream buf;
  buf << kTestHeader << "\n1,ST,0.0,0\n";
  EXPECT_THROW(read_csv(buf), std::runtime_error);
}

TEST(TraceIo, RejectsBadStructure) {
  std::stringstream buf;
  buf << kTestHeader << "\n1,XX,0.0,0,10.0,64.0,90.0,1,-1,0,\n";
  EXPECT_THROW(read_csv(buf), std::runtime_error);
}

TEST(TraceIo, RejectsUnsortedFailureDates) {
  std::stringstream buf;
  buf << kTestHeader << "\n1,ST,0.0,0,10.0,64.0,90.0,1,-1,0,5.0;2.0\n";
  EXPECT_THROW(read_csv(buf), std::runtime_error);
}

TEST(TraceIo, RejectsDuplicateFailureDates) {
  // TaskRecord documents strictly increasing dates; a duplicate would fire
  // a spurious zero-delta second kill in the simulator.
  std::stringstream buf;
  buf << kTestHeader << "\n1,ST,0.0,0,10.0,64.0,90.0,1,-1,0,2.0;2.0\n";
  EXPECT_THROW(read_csv(buf), std::runtime_error);
}

TEST(TraceIo, ParsesInputSizeField) {
  std::stringstream buf;
  buf << kTestHeader << "\n7,BoT,1.5,0,420.0,64.0,93.25,2,-1,0,10.0;20.0\n";
  const Trace t = read_csv(buf);
  ASSERT_EQ(t.job_count(), 1u);
  ASSERT_EQ(t.jobs[0].tasks.size(), 1u);
  EXPECT_DOUBLE_EQ(t.jobs[0].tasks[0].input_size, 93.25);
}

TEST(TraceIo, ToleratesCrlfLineEndings) {
  std::stringstream plain;
  write_csv(plain, sample_trace());
  // Re-encode the whole document with CRLF endings, as a Windows tool (or
  // an HTTP download) would deliver it.
  std::string crlf;
  for (const char c : plain.str()) {
    if (c == '\n') crlf += '\r';
    crlf += c;
  }
  std::stringstream buf(crlf);
  const Trace loaded = read_csv(buf);
  EXPECT_EQ(loaded.job_count(), sample_trace().job_count());
}

TEST(TraceIo, ToleratesTrailingBlankLines) {
  std::stringstream buf;
  buf << kTestHeader << "\n1,ST,0.0,0,10.0,64.0,90.0,1,-1,0,\n\n   \n\n";
  const Trace t = read_csv(buf);
  EXPECT_EQ(t.job_count(), 1u);
}

TEST(TraceIo, RejectsOutOfRangeNumbersWithLineNumber) {
  std::stringstream buf;
  buf << kTestHeader << "\n1,ST,0.0,0,1e999,64.0,90.0,1,-1,0,\n";
  try {
    (void)read_csv(buf);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
    EXPECT_NE(what.find("out of range"), std::string::npos) << what;
  }
}

TEST(TraceIo, ReportsLineNumberOfMalformedRow) {
  std::stringstream buf;
  buf << kTestHeader << "\n"
      << "1,ST,0.0,0,10.0,64.0,90.0,1,-1,0,\n"
      << "2,ST,0.0,0,banana,64.0,90.0,1,-1,0,\n";
  try {
    (void)read_csv(buf);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(TraceIo, RejectsMalformedIntegerFields) {
  std::stringstream buf;
  buf << kTestHeader << "\n-1,ST,0.0,0,10.0,64.0,90.0,1,-1,0,\n";
  EXPECT_THROW((void)read_csv(buf), std::runtime_error);
}

TEST(TraceIo, FileRoundTrip) {
  const Trace original = sample_trace();
  const std::string path = testing::TempDir() + "/cloudcr_trace_test.csv";
  write_csv_file(path, original);
  const Trace loaded = read_csv_file(path);
  EXPECT_EQ(loaded.job_count(), original.job_count());
  EXPECT_EQ(loaded.task_count(), original.task_count());
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent/path/trace.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace cloudcr::trace
