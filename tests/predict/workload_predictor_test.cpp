#include "predict/workload_predictor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "trace/generator.hpp"

namespace cloudcr::predict {
namespace {

trace::TaskRecord make_task(double length, double input = 0.0,
                            int priority = 2) {
  trace::TaskRecord t;
  t.length_s = length;
  t.input_size = input;
  t.priority = priority;
  return t;
}

TEST(ExactPredictor, ReturnsTrueLength) {
  const ExactPredictor p;
  EXPECT_DOUBLE_EQ(p.predict(make_task(420.0)), 420.0);
  EXPECT_EQ(p.name(), "exact");
}

TEST(BiasedPredictor, ScalesByFactor) {
  const BiasedPredictor half(0.5);
  const BiasedPredictor twice(2.0);
  EXPECT_DOUBLE_EQ(half.predict(make_task(420.0)), 210.0);
  EXPECT_DOUBLE_EQ(twice.predict(make_task(420.0)), 840.0);
  EXPECT_THROW(BiasedPredictor(0.0), std::invalid_argument);
  EXPECT_THROW(BiasedPredictor(-1.0), std::invalid_argument);
}

TEST(NoisyPredictor, UnbiasedInLogSpace) {
  const NoisyPredictor p(0.3, 17);
  const auto task = make_task(1000.0);
  double log_acc = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) log_acc += std::log(p.predict(task));
  EXPECT_NEAR(log_acc / kN, std::log(1000.0), 0.01);
}

TEST(NoisyPredictor, ZeroSigmaIsExact) {
  const NoisyPredictor p(0.0, 1);
  EXPECT_DOUBLE_EQ(p.predict(make_task(77.0)), 77.0);
  EXPECT_THROW(NoisyPredictor(-0.1, 1), std::invalid_argument);
}

TEST(HistoryPredictor, LearnsPerKeyMeans) {
  HistoryPredictor p(100.0);
  EXPECT_DOUBLE_EQ(p.predict_key(5), 100.0);  // nothing observed: default
  p.observe(5, 200.0);
  p.observe(5, 400.0);
  EXPECT_DOUBLE_EQ(p.predict_key(5), 300.0);
  // Unknown key falls back to the global mean.
  EXPECT_DOUBLE_EQ(p.predict_key(9), 300.0);
  p.observe(9, 1000.0);
  EXPECT_DOUBLE_EQ(p.predict_key(9), 1000.0);
  EXPECT_EQ(p.observed_keys(), 2u);
}

TEST(HistoryPredictor, PredictUsesPriorityAsKey) {
  HistoryPredictor p;
  p.observe(2, 500.0);
  EXPECT_DOUBLE_EQ(p.predict(make_task(999.0, 0.0, 2)), 500.0);
}

TEST(HistoryPredictor, Validation) {
  EXPECT_THROW(HistoryPredictor(0.0), std::invalid_argument);
  HistoryPredictor p;
  EXPECT_THROW(p.observe(1, 0.0), std::invalid_argument);
}

TEST(RegressionPredictor, LearnsInputLengthRelation) {
  // Training data follows the generator's law: input = length^0.75, i.e.
  // length = input^(4/3).
  std::vector<double> inputs, lengths;
  for (double len = 50.0; len <= 5000.0; len += 50.0) {
    inputs.push_back(std::pow(len, 0.75));
    lengths.push_back(len);
  }
  const RegressionPredictor p(inputs, lengths, 2);
  // Interpolated prediction within a few percent.
  const double probe_input = std::pow(1234.0, 0.75);
  EXPECT_NEAR(p.predict(make_task(0.0, probe_input)), 1234.0, 60.0);
  EXPECT_GT(p.model().r_squared(), 0.995);
}

TEST(RegressionPredictor, ClampsToMinimum) {
  const std::vector<double> inputs{1.0, 2.0, 3.0};
  const std::vector<double> lengths{10.0, 20.0, 30.0};
  const RegressionPredictor p(inputs, lengths, 1, /*min_s=*/5.0);
  EXPECT_DOUBLE_EQ(p.predict(make_task(0.0, -100.0)), 5.0);
}

TEST(RegressionPredictor, EndToEndOnGeneratedTrace) {
  // Train on one trace, predict on another: median relative error must be
  // small (the generator's input/length coupling has ~15% noise).
  trace::GeneratorConfig cfg;
  cfg.seed = 31;
  cfg.horizon_s = 43200.0;
  cfg.arrival_rate = 0.05;
  cfg.sample_job_filter = false;
  cfg.workload.long_service_fraction = 0.0;
  const auto train = trace::TraceGenerator(cfg).generate();
  cfg.seed = 32;
  const auto test = trace::TraceGenerator(cfg).generate();

  std::vector<double> inputs, lengths;
  for (const auto& job : train.jobs) {
    for (const auto& task : job.tasks) {
      inputs.push_back(task.input_size);
      lengths.push_back(task.length_s);
    }
  }
  const RegressionPredictor p(inputs, lengths, 2);

  std::vector<double> rel_errors;
  for (const auto& job : test.jobs) {
    for (const auto& task : job.tasks) {
      rel_errors.push_back(
          std::abs(p.predict(task) - task.length_s) / task.length_s);
    }
  }
  ASSERT_FALSE(rel_errors.empty());
  std::nth_element(rel_errors.begin(),
                   rel_errors.begin() + static_cast<std::ptrdiff_t>(
                                            rel_errors.size() / 2),
                   rel_errors.end());
  const double median = rel_errors[rel_errors.size() / 2];
  EXPECT_LT(median, 0.30);
}

}  // namespace
}  // namespace cloudcr::predict
