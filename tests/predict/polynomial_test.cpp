#include "predict/polynomial.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/rng.hpp"

namespace cloudcr::predict {
namespace {

TEST(PolynomialRegression, RecoversExactLine) {
  const std::vector<double> x{0.0, 1.0, 2.0, 3.0};
  const std::vector<double> y{1.0, 3.0, 5.0, 7.0};  // y = 1 + 2x
  const PolynomialRegression fit(x, y, 1);
  ASSERT_EQ(fit.coefficients().size(), 2u);
  EXPECT_NEAR(fit.coefficients()[0], 1.0, 1e-9);
  EXPECT_NEAR(fit.coefficients()[1], 2.0, 1e-9);
  EXPECT_NEAR(fit.r_squared(), 1.0, 1e-12);
  EXPECT_NEAR(fit.rmse(), 0.0, 1e-9);
}

TEST(PolynomialRegression, RecoversExactQuadratic) {
  std::vector<double> x, y;
  for (double v = -3.0; v <= 3.0; v += 0.5) {
    x.push_back(v);
    y.push_back(2.0 - v + 0.5 * v * v);
  }
  const PolynomialRegression fit(x, y, 2);
  EXPECT_NEAR(fit.coefficients()[0], 2.0, 1e-9);
  EXPECT_NEAR(fit.coefficients()[1], -1.0, 1e-9);
  EXPECT_NEAR(fit.coefficients()[2], 0.5, 1e-9);
  EXPECT_NEAR(fit.predict(10.0), 2.0 - 10.0 + 50.0, 1e-6);
}

TEST(PolynomialRegression, NoisyFitIsClose) {
  stats::Rng rng(3);
  std::vector<double> x, y;
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.uniform(0.0, 100.0);
    x.push_back(v);
    y.push_back(5.0 + 3.0 * v + rng.normal() * 2.0);
  }
  const PolynomialRegression fit(x, y, 1);
  EXPECT_NEAR(fit.coefficients()[0], 5.0, 0.5);
  EXPECT_NEAR(fit.coefficients()[1], 3.0, 0.02);
  EXPECT_GT(fit.r_squared(), 0.99);
  EXPECT_NEAR(fit.rmse(), 2.0, 0.2);
}

TEST(PolynomialRegression, DegreeZeroIsMean) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y{10.0, 20.0, 30.0, 40.0};
  const PolynomialRegression fit(x, y, 0);
  EXPECT_NEAR(fit.predict(999.0), 25.0, 1e-9);
}

TEST(PolynomialRegression, RejectsBadInputs) {
  const std::vector<double> x{1.0, 2.0};
  const std::vector<double> y{1.0};
  EXPECT_THROW(PolynomialRegression(x, y, 1), std::invalid_argument);

  const std::vector<double> x2{1.0};
  const std::vector<double> y2{1.0};
  EXPECT_THROW(PolynomialRegression(x2, y2, 1), std::invalid_argument);

  // Singular: all x identical cannot identify a slope.
  const std::vector<double> x3{2.0, 2.0, 2.0};
  const std::vector<double> y3{1.0, 2.0, 3.0};
  EXPECT_THROW(PolynomialRegression(x3, y3, 1), std::invalid_argument);
}

TEST(PolynomialRegression, HigherDegreeNeverWorseInSample) {
  stats::Rng rng(7);
  std::vector<double> x, y;
  for (int i = 0; i < 200; ++i) {
    const double v = rng.uniform(0.0, 10.0);
    x.push_back(v);
    y.push_back(std::sin(v) + 0.1 * rng.normal());
  }
  const PolynomialRegression d1(x, y, 1);
  const PolynomialRegression d3(x, y, 3);
  const PolynomialRegression d5(x, y, 5);
  EXPECT_LE(d3.rmse(), d1.rmse() + 1e-9);
  EXPECT_LE(d5.rmse(), d3.rmse() + 1e-9);
}

}  // namespace
}  // namespace cloudcr::predict
