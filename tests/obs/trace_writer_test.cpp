// Chrome trace-event writer: JSON escaping, ring eviction order, window and
// category filters, and per-track span sanity (what scripts/
// check_trace_json.py validates on real artifacts).

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <string>

#include "obs/trace_writer.hpp"

namespace cloudcr::obs {
namespace {

std::string json_of(const TraceWriter& writer) {
  std::ostringstream os;
  writer.write_json(os);
  return os.str();
}

TEST(TraceCategories, ParsesMasksAndRejectsUnknowns) {
  EXPECT_EQ(parse_trace_categories(""), kCatAll);
  EXPECT_EQ(parse_trace_categories("job"), kCatJob);
  EXPECT_EQ(parse_trace_categories("job|vm"), kCatJob | kCatVm);
  EXPECT_EQ(parse_trace_categories("phase|job|task|vm"), kCatAll);
  EXPECT_THROW(parse_trace_categories("jobs"), std::invalid_argument);
  EXPECT_THROW(parse_trace_categories("job|"), std::invalid_argument);
  try {
    parse_trace_categories("nope");
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("'nope'"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("phase, job, task, vm"),
              std::string::npos);
  }
}

TEST(TraceWriter, EmitsCompleteSpansAndInstants) {
  TraceWriter writer;
  writer.sim_span(kJobPid, 7, "run", kCatTask, 1.0, 3.5);
  writer.sim_instant(kJobPid, 7, "failure", kCatTask, 3.5);
  const std::string json = json_of(writer);
  // Span: ph "X" with ts/dur in microseconds of simulated time.
  EXPECT_NE(json.find("{\"name\":\"run\",\"cat\":\"task\",\"ph\":\"X\","
                      "\"pid\":2,\"tid\":7,\"ts\":1000000,\"dur\":2500000}"),
            std::string::npos);
  // Instant: ph "I" with thread scope, no dur.
  EXPECT_NE(json.find("{\"name\":\"failure\",\"cat\":\"task\",\"ph\":\"I\","
                      "\"pid\":2,\"tid\":7,\"ts\":3500000,\"s\":\"t\"}"),
            std::string::npos);
}

TEST(TraceWriter, EscapesAwkwardNames) {
  TraceWriter writer;
  writer.sim_instant(kJobPid, 1, "quote \" backslash \\ newline \n", kCatJob,
                     0.0);
  const std::string json = json_of(writer);
  EXPECT_NE(json.find("quote \\\" backslash \\\\ newline \\n"),
            std::string::npos);
  // The raw characters must not survive unescaped inside a string.
  EXPECT_EQ(json.find("newline \n"), std::string::npos);
}

TEST(TraceWriter, HostSpansUseTheWriterEpoch) {
  TraceWriter writer;
  const auto t0 = std::chrono::steady_clock::now();
  writer.host_span("estimation", t0, t0 + std::chrono::milliseconds(2));
  const std::string json = json_of(writer);
  EXPECT_NE(json.find("\"name\":\"estimation\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"phase\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
}

TEST(TraceWriter, RingEvictsOldestFirst) {
  TraceWriterOptions opts;
  opts.ring_capacity = 3;
  TraceWriter writer(opts);
  for (int i = 0; i < 5; ++i) {
    writer.sim_instant(kJobPid, 1, "e" + std::to_string(i), kCatJob,
                       static_cast<double>(i));
  }
  EXPECT_EQ(writer.size(), 3u);
  EXPECT_EQ(writer.dropped(), 2u);
  const std::string json = json_of(writer);
  // e0/e1 evicted; survivors serialize oldest first.
  EXPECT_EQ(json.find("\"e0\""), std::string::npos);
  EXPECT_EQ(json.find("\"e1\""), std::string::npos);
  const std::size_t p2 = json.find("\"e2\"");
  const std::size_t p3 = json.find("\"e3\"");
  const std::size_t p4 = json.find("\"e4\"");
  ASSERT_NE(p2, std::string::npos);
  ASSERT_NE(p3, std::string::npos);
  ASSERT_NE(p4, std::string::npos);
  EXPECT_LT(p2, p3);
  EXPECT_LT(p3, p4);
  EXPECT_NE(json.find("\"dropped_events\":2"), std::string::npos);
}

TEST(TraceWriter, SimWindowFiltersWholeEventsOnly) {
  TraceWriterOptions opts;
  opts.window_begin_s = 10.0;
  opts.window_end_s = 20.0;
  TraceWriter writer(opts);
  writer.sim_span(kJobPid, 1, "before", kCatJob, 1.0, 9.0);   // out
  writer.sim_span(kJobPid, 1, "straddle", kCatJob, 9.0, 11.0);  // overlaps
  writer.sim_span(kJobPid, 1, "inside", kCatJob, 12.0, 13.0);   // in
  writer.sim_span(kJobPid, 1, "after", kCatJob, 21.0, 22.0);    // out
  writer.sim_instant(kJobPid, 1, "tick", kCatJob, 15.0);        // in
  // Host-clock phases ignore the simulated window.
  const auto now = std::chrono::steady_clock::now();
  writer.host_span("drain", now, now);
  const std::string json = json_of(writer);
  EXPECT_EQ(json.find("\"before\""), std::string::npos);
  EXPECT_EQ(json.find("\"after\""), std::string::npos);
  EXPECT_NE(json.find("\"straddle\""), std::string::npos);
  EXPECT_NE(json.find("\"inside\""), std::string::npos);
  EXPECT_NE(json.find("\"tick\""), std::string::npos);
  EXPECT_NE(json.find("\"drain\""), std::string::npos);
}

TEST(TraceWriter, CategoryMaskDropsAtEmission) {
  TraceWriterOptions opts;
  opts.categories = kCatJob;
  TraceWriter writer(opts);
  writer.sim_span(kJobPid, 1, "job_span", kCatJob, 0.0, 1.0);
  writer.sim_span(kJobPid, 1, "task_span", kCatTask, 0.0, 1.0);
  writer.sim_span(kVmPid, 1, "vm_span", kCatVm, 0.0, 1.0);
  const auto now = std::chrono::steady_clock::now();
  writer.host_span("phase_span", now, now);
  EXPECT_EQ(writer.size(), 1u);
  // Filtered events are not "dropped" — that counter means ring eviction.
  EXPECT_EQ(writer.dropped(), 0u);
  const std::string json = json_of(writer);
  EXPECT_NE(json.find("\"job_span\""), std::string::npos);
  EXPECT_EQ(json.find("\"task_span\""), std::string::npos);
  EXPECT_EQ(json.find("\"vm_span\""), std::string::npos);
  EXPECT_EQ(json.find("\"phase_span\""), std::string::npos);
}

TEST(TraceWriter, WritesTrackMetadataPerPidAndTid) {
  TraceWriter writer;
  writer.sim_span(kJobPid, 4, "run", kCatTask, 0.0, 1.0);
  writer.sim_span(kVmPid, 9, "job 1 task 0", kCatVm, 0.0, 1.0);
  const std::string json = json_of(writer);
  EXPECT_NE(json.find("\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2"),
            std::string::npos);
  EXPECT_NE(json.find("\"jobs (simulated clock)\""), std::string::npos);
  EXPECT_NE(json.find("\"VMs (simulated clock)\""), std::string::npos);
  EXPECT_NE(json.find("\"job 4\""), std::string::npos);
  EXPECT_NE(json.find("\"vm 9\""), std::string::npos);
}

TEST(TraceWriter, NegativeDurationsClampToZero) {
  TraceWriter writer;
  writer.sim_span(kJobPid, 1, "backwards", kCatJob, 5.0, 4.0);
  const std::string json = json_of(writer);
  EXPECT_NE(json.find("\"dur\":0"), std::string::npos);
}

}  // namespace
}  // namespace cloudcr::obs
