// ObsSpec: the obs= value grammar — serialize/parse round trips, parse
// diagnostics, and the integration with the ScenarioSpec key-context error
// shape ("scenario key '<key>' = '<value>': ...") the CLI surfaces pin.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "api/scenario.hpp"
#include "obs/spec.hpp"

namespace cloudcr::obs {
namespace {

ObsSpec full_spec() {
  ObsSpec spec;
  spec.stats = true;
  spec.probe_interval_s = 3600.5;
  spec.trace_path = "out/{name}.trace.json";
  spec.trace_window_begin_s = 86400.0;
  spec.trace_window_end_s = 172800.25;
  spec.trace_categories = "job|vm";
  spec.trace_ring = 4096;
  return spec;
}

TEST(ObsSpec, DefaultSerializesEmptyAndIsDisabled) {
  const ObsSpec spec;
  EXPECT_EQ(serialize_obs(spec), "");
  EXPECT_EQ(parse_obs(""), spec);
  EXPECT_FALSE(enabled(spec));
}

TEST(ObsSpec, RoundTripsEveryField) {
  const ObsSpec spec = full_spec();
  EXPECT_TRUE(enabled(spec));
  const ObsSpec parsed = parse_obs(serialize_obs(spec));
  EXPECT_EQ(parsed, spec);
  // Spot-check against a vacuous operator==.
  EXPECT_TRUE(parsed.stats);
  EXPECT_DOUBLE_EQ(parsed.probe_interval_s, 3600.5);
  EXPECT_EQ(parsed.trace_path, "out/{name}.trace.json");
  EXPECT_EQ(parsed.trace_categories, "job|vm");
  EXPECT_EQ(parsed.trace_ring, 4096u);
}

TEST(ObsSpec, RoundTripsInfiniteWindowEnd) {
  ObsSpec spec;
  spec.trace_path = "t.json";
  spec.trace_window_begin_s = 100.0;
  // End stays the default infinity: serialized as "window:100-inf".
  const std::string text = serialize_obs(spec);
  EXPECT_NE(text.find("window:100-inf"), std::string::npos);
  const ObsSpec parsed = parse_obs(text);
  EXPECT_EQ(parsed, spec);
  EXPECT_TRUE(std::isinf(parsed.trace_window_end_s));
}

TEST(ObsSpec, ParsesEachFeatureIndependently) {
  EXPECT_TRUE(parse_obs("stats").stats);
  EXPECT_DOUBLE_EQ(parse_obs("probe:60").probe_interval_s, 60.0);
  EXPECT_EQ(parse_obs("trace:a.json").trace_path, "a.json");
  EXPECT_EQ(parse_obs("ring:8").trace_ring, 8u);
  const ObsSpec windowed = parse_obs("window:5-10");
  EXPECT_DOUBLE_EQ(windowed.trace_window_begin_s, 5.0);
  EXPECT_DOUBLE_EQ(windowed.trace_window_end_s, 10.0);
}

TEST(ObsSpec, RejectsMalformedValues) {
  EXPECT_THROW(parse_obs("bogus"), std::invalid_argument);
  EXPECT_THROW(parse_obs("stats+bogus:1"), std::invalid_argument);
  EXPECT_THROW(parse_obs("probe:abc"), std::invalid_argument);
  EXPECT_THROW(parse_obs("probe:0"), std::invalid_argument);
  EXPECT_THROW(parse_obs("probe:-5"), std::invalid_argument);
  EXPECT_THROW(parse_obs("trace:"), std::invalid_argument);
  EXPECT_THROW(parse_obs("window:10"), std::invalid_argument);
  EXPECT_THROW(parse_obs("window:10-5"), std::invalid_argument);
  EXPECT_THROW(parse_obs("cats:job|bogus"), std::invalid_argument);
  EXPECT_THROW(parse_obs("ring:0"), std::invalid_argument);
  EXPECT_THROW(parse_obs("ring:1.5"), std::invalid_argument);
  // Unknown features name themselves and list the known grammar.
  try {
    parse_obs("stats+bogus:1");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("'bogus:1'"), std::string::npos);
    EXPECT_NE(what.find("stats, probe:<s>"), std::string::npos);
  }
}

TEST(ObsSpec, ScenarioSpecCarriesAndRoundTripsObs) {
  api::ScenarioSpec spec;
  spec.name = "obs_roundtrip";
  spec.obs = full_spec();
  const api::ScenarioSpec parsed = api::parse_scenario(api::serialize(spec));
  EXPECT_EQ(parsed, spec);
  EXPECT_EQ(parsed.obs, spec.obs);
}

TEST(ObsSpec, ScenarioParseErrorNamesKeyAndValue) {
  // The registry error-context contract: a bad obs= value reports the
  // scenario key AND the offending value, then the underlying diagnostic.
  try {
    api::parse_scenario("obs=probe:never\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("scenario key 'obs' = 'probe:never':"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("malformed number 'never'"), std::string::npos)
        << what;
  }
}

TEST(ObsSpec, ObsIsLoweredIntoSimConfig) {
  api::ScenarioSpec spec;
  spec.obs.stats = true;
  spec.obs.probe_interval_s = 120.0;
  const sim::SimConfig cfg = api::to_sim_config(spec);
  EXPECT_TRUE(cfg.collect_stats);
  EXPECT_DOUBLE_EQ(cfg.probe_interval_s, 120.0);
}

}  // namespace
}  // namespace cloudcr::obs
