// Counter/timer/gauge registry: per-thread collection, order-independent
// merges, snapshot sorting, and the text/JSON renderings. The registry is
// compiled in every build (only the hot-path hooks are gated), so these
// tests run with and without CLOUDCR_OBS.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/stats.hpp"

namespace cloudcr::obs {
namespace {

std::uint64_t value_of(const std::string& name) {
  for (const StatValue& v : stats_snapshot()) {
    if (v.name == name) return v.value;
  }
  ADD_FAILURE() << "stat '" << name << "' not in the snapshot";
  return 0;
}

TEST(StatsRegistry, CountersSumAcrossAdds) {
  static Stat counter("test.sum_counter", StatKind::kCounter);
  reset_stats();
  counter.add(3);
  counter.add(4);
  EXPECT_EQ(value_of("test.sum_counter"), 7u);
}

TEST(StatsRegistry, GaugesKeepTheMaximum) {
  static Stat gauge("test.max_gauge", StatKind::kGauge);
  reset_stats();
  gauge.add(10);
  gauge.add(3);
  gauge.add(8);
  EXPECT_EQ(value_of("test.max_gauge"), 10u);
}

TEST(StatsRegistry, ResetZeroesEverySlot) {
  static Stat counter("test.reset_counter", StatKind::kCounter);
  counter.add(42);
  reset_stats();
  EXPECT_EQ(value_of("test.reset_counter"), 0u);
}

TEST(StatsRegistry, MergesAcrossThreadsOrderFree) {
  static Stat counter("test.thread_counter", StatKind::kCounter);
  static Stat gauge("test.thread_gauge", StatKind::kGauge);
  reset_stats();
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([t] {
      for (int i = 0; i < 1000; ++i) counter.add(1);
      gauge.add(static_cast<std::uint64_t>(100 + t));
    });
  }
  for (auto& w : workers) w.join();
  // Sum is partition-independent, max picks the largest thread's value.
  EXPECT_EQ(value_of("test.thread_counter"), 4000u);
  EXPECT_EQ(value_of("test.thread_gauge"), 103u);
}

TEST(StatsRegistry, CountsSurviveThreadExit) {
  static Stat counter("test.exit_counter", StatKind::kCounter);
  reset_stats();
  std::thread([&] { counter.add(5); }).join();
  EXPECT_EQ(value_of("test.exit_counter"), 5u);
}

TEST(StatsRegistry, SnapshotIsSortedByName) {
  const auto snapshot = stats_snapshot();
  ASSERT_FALSE(snapshot.empty());
  for (std::size_t i = 1; i < snapshot.size(); ++i) {
    EXPECT_LT(snapshot[i - 1].name, snapshot[i].name);
  }
}

TEST(StatsRegistry, BuiltInsAreAlwaysPresent) {
  // The registry shape is a function of the build, not the workload: every
  // built-in shows up (value 0 when nothing ran), so downstream parsers
  // can rely on the columns existing.
  reset_stats();
  EXPECT_EQ(value_of("sim.events_popped"), 0u);
  EXPECT_EQ(value_of("sched.decide_calls"), 0u);
  EXPECT_EQ(value_of("storage.opslab_high_water"), 0u);
  EXPECT_EQ(value_of("api.replay_ns"), 0u);
}

TEST(StatsRegistry, TextOmitsTimersOnRequest) {
  static Stat timer("test.text_timer_ns", StatKind::kTimerNs);
  reset_stats();
  timer.add(123);
  std::ostringstream with;
  write_stats_text(with, /*include_timers=*/true);
  EXPECT_NE(with.str().find("test.text_timer_ns timer_ns 123"),
            std::string::npos);
  std::ostringstream without;
  write_stats_text(without, /*include_timers=*/false);
  EXPECT_EQ(without.str().find("test.text_timer_ns"), std::string::npos);
  // Non-timer lines keep the `name kind value` shape either way.
  EXPECT_NE(without.str().find("sim.events_popped counter 0"),
            std::string::npos);
}

TEST(StatsRegistry, JsonCarriesNameKindValue) {
  static Stat counter("test.json_counter", StatKind::kCounter);
  reset_stats();
  counter.add(9);
  std::ostringstream os;
  write_stats_json(os);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("{\"name\":\"test.json_counter\",\"kind\":\"counter\","
                      "\"value\":9}"),
            std::string::npos);
}

TEST(StatsRegistry, KindTokens) {
  EXPECT_STREQ(stat_kind_token(StatKind::kCounter), "counter");
  EXPECT_STREQ(stat_kind_token(StatKind::kGauge), "gauge");
  EXPECT_STREQ(stat_kind_token(StatKind::kTimerNs), "timer_ns");
}

}  // namespace
}  // namespace cloudcr::obs
