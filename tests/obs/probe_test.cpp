// Time-series probes: sampling must never change results (bit-identity
// probes on vs off), samples land on the configured cadence, and the
// CSV/JSON renderings match the documented schema. Probes are compiled in
// every build, so none of this is gated on CLOUDCR_OBS.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "api/artifact_io.hpp"
#include "api/runner.hpp"
#include "api/scenario.hpp"
#include "obs/probe.hpp"

namespace cloudcr::obs {
namespace {

api::ScenarioSpec small_spec() {
  api::ScenarioSpec spec;
  spec.name = "probe_small";
  spec.trace.seed = 11;
  spec.trace.horizon_s = 6.0 * 3600.0;
  return spec;
}

TEST(ProbeCsv, HeaderAndRowsMatchTheSchema) {
  EXPECT_STREQ(probe_csv_header(),
               "t_s,cluster_util,pending_tasks,running_tasks,active_jobs,"
               "sched_held_jobs,completed_jobs,running_wpr,"
               "task_rows_high_water");
  ProbeSample p;
  p.t_s = 3600.0;
  p.cluster_util = 0.25;
  p.pending_tasks = 3;
  p.running_tasks = 17;
  p.active_jobs = 9;
  p.sched_held_jobs = 1;
  p.completed_jobs = 40;
  p.running_wpr = 0.875;
  p.task_rows_high_water = 128;
  std::ostringstream row;
  write_probe_csv_row(row, p);
  EXPECT_EQ(row.str(), "3600,0.25,3,17,9,1,40,0.875,128");
  std::ostringstream doc;
  write_probe_csv(doc, {p});
  EXPECT_EQ(doc.str(),
            std::string(probe_csv_header()) + "\n" + row.str() + "\n");
  std::ostringstream json;
  write_probe_json(json, p);
  EXPECT_NE(json.str().find("\"t_s\":3600"), std::string::npos);
  EXPECT_NE(json.str().find("\"running_wpr\":0.875"), std::string::npos);
}

TEST(ProbeIntegration, SamplingNeverChangesResults) {
  const api::RunArtifact plain = api::run_scenario(small_spec());
  api::ScenarioSpec probed_spec = small_spec();
  probed_spec.obs.probe_interval_s = 1800.0;
  const api::RunArtifact probed = api::run_scenario(probed_spec);

  // Chunking the event drains at probe ticks must pop the same events in
  // the same order: everything except the probes vector is identical.
  EXPECT_TRUE(plain.result.probes.empty());
  EXPECT_FALSE(probed.result.probes.empty());
  EXPECT_EQ(plain.result.events_dispatched, probed.result.events_dispatched);
  ASSERT_EQ(plain.result.outcomes.size(), probed.result.outcomes.size());
  for (std::size_t i = 0; i < plain.result.outcomes.size(); ++i) {
    EXPECT_EQ(plain.result.outcomes[i].job_id,
              probed.result.outcomes[i].job_id);
    EXPECT_DOUBLE_EQ(plain.result.outcomes[i].wallclock_s,
                     probed.result.outcomes[i].wallclock_s);
    EXPECT_DOUBLE_EQ(plain.result.outcomes[i].checkpoint_s,
                     probed.result.outcomes[i].checkpoint_s);
  }
}

TEST(ProbeIntegration, SamplesLandOnTheCadence) {
  api::ScenarioSpec spec = small_spec();
  spec.obs.probe_interval_s = 1800.0;
  const api::RunArtifact artifact = api::run_scenario(spec);
  const auto& probes = artifact.result.probes;
  ASSERT_GE(probes.size(), 2u);
  for (std::size_t i = 0; i < probes.size(); ++i) {
    // Every tick is a positive multiple of the interval, strictly rising.
    const double ratio = probes[i].t_s / 1800.0;
    EXPECT_DOUBLE_EQ(ratio, static_cast<double>(static_cast<int>(ratio + 0.5)));
    if (i > 0) EXPECT_GT(probes[i].t_s, probes[i - 1].t_s);
    EXPECT_GE(probes[i].cluster_util, 0.0);
    EXPECT_LE(probes[i].cluster_util, 1.0);
    // completed_jobs is monotone; the high-water mark never shrinks.
    if (i > 0) {
      EXPECT_GE(probes[i].completed_jobs, probes[i - 1].completed_jobs);
      EXPECT_GE(probes[i].task_rows_high_water,
                probes[i - 1].task_rows_high_water);
    }
  }
}

TEST(ProbeIntegration, StreamedReplayProbesMatchMaterialized) {
  api::ScenarioSpec spec = small_spec();
  spec.obs.probe_interval_s = 3600.0;
  const api::ScenarioRunner runner(spec);
  const api::RunArtifact materialized = runner.run();
  const api::RunArtifact streamed = runner.run_streamed();
  ASSERT_EQ(materialized.result.probes.size(), streamed.result.probes.size());
  for (std::size_t i = 0; i < materialized.result.probes.size(); ++i) {
    const ProbeSample& m = materialized.result.probes[i];
    const ProbeSample& s = streamed.result.probes[i];
    // Every workload-state column is bit-identical across the two replay
    // paths. task_rows_high_water is an *allocation* column — streaming
    // recycles retired rows, so its table stays smaller by design.
    ProbeSample m_workload = m;
    ProbeSample s_workload = s;
    m_workload.task_rows_high_water = 0;
    s_workload.task_rows_high_water = 0;
    std::ostringstream a;
    std::ostringstream b;
    write_probe_csv_row(a, m_workload);
    write_probe_csv_row(b, s_workload);
    EXPECT_EQ(a.str(), b.str()) << "probe row " << i;
    EXPECT_LE(s.task_rows_high_water, m.task_rows_high_water)
        << "probe row " << i;
  }
}

TEST(ProbeIntegration, ArtifactJsonIsSparse) {
  // Uninstrumented artifacts serialize without any obs fields, so golden
  // documents from default runs stay byte-identical to the pre-obs schema.
  api::RunArtifact bare;
  bare.spec = small_spec();
  std::ostringstream without;
  api::write_artifact_json(without, bare);
  EXPECT_EQ(without.str().find("probes"), std::string::npos);
  EXPECT_EQ(without.str().find("estimation_wall_s"), std::string::npos);
  EXPECT_EQ(without.str().find("peak_rss_mb"), std::string::npos);

  api::RunArtifact instrumented = bare;
  instrumented.estimation_wall_s = 0.5;
  instrumented.peak_rss_mb = 100.0;
  instrumented.result.probes.push_back({});
  std::ostringstream with;
  api::write_artifact_json(with, instrumented);
  EXPECT_NE(with.str().find("\"estimation_wall_s\":0.5"), std::string::npos);
  EXPECT_NE(with.str().find("\"peak_rss_mb\":100"), std::string::npos);
  EXPECT_NE(with.str().find("\"probes\":[{"), std::string::npos);
}

TEST(PeakRss, ReportsAPlausiblePositiveValue) {
  const double mb = peak_rss_mb();
  // getrusage is available on every platform CI runs; a running test
  // process is comfortably above 1 MB and below 1 TB.
  EXPECT_GT(mb, 1.0);
  EXPECT_LT(mb, 1024.0 * 1024.0);
}

}  // namespace
}  // namespace cloudcr::obs
