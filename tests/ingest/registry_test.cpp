// TraceSourceRegistry: spec parsing, built-ins, strict validation, and the
// synthetic source's equivalence with the raw generator.

#include "ingest/registry.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "ingest/csv_source.hpp"
#include "ingest/google_source.hpp"
#include "ingest/synthetic_source.hpp"
#include "trace/generator.hpp"

namespace cloudcr::ingest {
namespace {

TEST(SourceSpec, Splits) {
  EXPECT_EQ(split_source_spec("synthetic").scheme, "synthetic");
  EXPECT_EQ(split_source_spec("synthetic").arg, "");
  EXPECT_EQ(split_source_spec("csv:/a/b.csv").scheme, "csv");
  EXPECT_EQ(split_source_spec("csv:/a/b.csv").arg, "/a/b.csv");
  // Only the first ':' splits (Windows-style or URL-ish paths survive).
  EXPECT_EQ(split_source_spec("google:/p?a=b:c").arg, "/p?a=b:c");
}

TEST(TraceSourceRegistry, HasBuiltins) {
  auto registry = TraceSourceRegistry::with_builtins();
  EXPECT_TRUE(registry.contains("synthetic"));
  EXPECT_TRUE(registry.contains("csv"));
  EXPECT_TRUE(registry.contains("google"));
  EXPECT_TRUE(registry.contains("slurm"));
  EXPECT_TRUE(registry.contains("csv:/some/path"));  // full specs work too
  EXPECT_FALSE(registry.contains("parquet"));
  EXPECT_EQ(registry.names().size(), 4u);
}

TEST(TraceSourceRegistry, MakeBuildsTheRightSource) {
  auto registry = TraceSourceRegistry::with_builtins();
  const auto csv = registry.make("csv:/data/jobs.csv?time_unit=ms");
  EXPECT_EQ(csv->describe(), "csv:/data/jobs.csv");
  EXPECT_DOUBLE_EQ(
      dynamic_cast<const MappedCsvSource&>(*csv).mapping().time_scale, 1e-3);

  const auto google = registry.make("google:/logs/te.csv?memory_scale_mb=512");
  EXPECT_EQ(google->describe(), "google:/logs/te.csv");
  EXPECT_DOUBLE_EQ(
      dynamic_cast<const GoogleTraceSource&>(*google).options().memory_scale_mb,
      512.0);
}

TEST(TraceSourceRegistry, RejectsBadSpecs) {
  auto registry = TraceSourceRegistry::with_builtins();
  EXPECT_THROW((void)registry.make("parquet:/x"), std::invalid_argument);
  EXPECT_THROW((void)registry.make("csv:"), std::invalid_argument);
  EXPECT_THROW((void)registry.make("google:"), std::invalid_argument);
  EXPECT_THROW((void)registry.make("synthetic:arg"), std::invalid_argument);
  EXPECT_THROW((void)registry.make("csv:/p?bogus=1"), std::invalid_argument);
  EXPECT_THROW((void)registry.make("google:/p?bogus=1"),
               std::invalid_argument);
  // validate() is make() without the load.
  EXPECT_THROW(registry.validate("parquet:/x"), std::invalid_argument);
  registry.validate("csv:/never/checked/until/load.csv");
}

TEST(TraceSourceRegistry, UnknownSchemeErrorListsRegistered) {
  auto registry = TraceSourceRegistry::with_builtins();
  try {
    (void)registry.make("parquet:/x");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("google"), std::string::npos);
    EXPECT_NE(what.find("synthetic"), std::string::npos);
  }
}

TEST(TraceSourceRegistry, CustomSchemesPlugIn) {
  auto registry = TraceSourceRegistry::with_builtins();
  registry.add("fixed", [](const std::string&, const SourceEnv&) -> SourcePtr {
    trace::GeneratorConfig cfg;
    cfg.seed = 1;
    cfg.horizon_s = 600.0;
    return std::make_unique<SyntheticSource>(cfg);
  });
  EXPECT_TRUE(registry.contains("fixed"));
  EXPECT_EQ(registry.make("fixed")->load().trace.horizon_s, 600.0);
}

TEST(SyntheticSource, MatchesGeneratorExactly) {
  trace::GeneratorConfig cfg;
  cfg.seed = 77;
  cfg.horizon_s = 3600.0;
  SourceEnv env;
  env.generator = cfg;

  const auto source =
      TraceSourceRegistry::with_builtins().make("synthetic", env);
  const IngestResult result = source->load();
  const trace::Trace direct = trace::TraceGenerator(cfg).generate();

  ASSERT_EQ(result.trace.job_count(), direct.job_count());
  EXPECT_EQ(result.trace.task_count(), direct.task_count());
  EXPECT_EQ(result.report.rows_total, direct.task_count());
  EXPECT_EQ(result.report.rows_skipped, 0u);
  for (std::size_t j = 0; j < direct.jobs.size(); ++j) {
    EXPECT_EQ(result.trace.jobs[j].id, direct.jobs[j].id);
    EXPECT_EQ(result.trace.jobs[j].arrival_s, direct.jobs[j].arrival_s);
  }
}

}  // namespace
}  // namespace cloudcr::ingest
