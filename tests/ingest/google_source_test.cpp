// GoogleTraceSource: golden-file reconstruction (jobs, lengths, failure
// dates, priorities, memory), malformed-row recovery with an exact report,
// and the write_task_events fixture bridge.

#include "ingest/google_source.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "ingest/source.hpp"
#include "trace/generator.hpp"

namespace cloudcr::ingest {
namespace {

std::string write_temp(const std::string& name, const std::string& content) {
  const std::string path = testing::TempDir() + "/" + name;
  std::ofstream os(path);
  os << content;
  return path;
}

// A hand-written task_events log covering the reconstruction rules:
//
//   job 42 / task 0: SUBMIT 100s, SCHEDULE 100s, EVICT 160s (failure at
//     60s active), SCHEDULE 170s, FINISH 250s -> length 140s, prio 3 -> 4,
//     memory 0.25 * 1024 = 256 MB
//   job 42 / task 1: SUBMIT 110s, SCHEDULE 120s, KILL 150s -> terminal
//     failure at 30s active, length 30s (censored by the kill)
//   job 99 / task 0: SUBMIT 50s, never scheduled -> dropped entirely
//
// Earliest event is 50s, so job 42 arrives at rebased t = 50s; the horizon
// is 250s - 50s = 200s.
constexpr char kGolden[] =
    "50000000,,99,0,m9,0,u,0,1,0.0,0.5,0.0,0\n"
    "100000000,,42,0,m1,0,u,0,3,0.0,0.25,0.0,0\n"
    "100000000,,42,0,m1,1,u,0,3,0.0,0.25,0.0,0\n"
    "110000000,,42,1,m2,0,u,0,3,0.0,0.125,0.0,0\n"
    "120000000,,42,1,m2,1,u,0,3,0.0,0.125,0.0,0\n"
    "150000000,,42,1,m2,5,u,0,3,0.0,0.125,0.0,0\n"
    "160000000,,42,0,m1,2,u,0,3,0.0,0.25,0.0,0\n"
    "170000000,,42,0,m1,1,u,0,3,0.0,0.25,0.0,0\n"
    "250000000,,42,0,m1,4,u,0,3,0.0,0.25,0.0,0\n";

TEST(GoogleSource, GoldenReconstruction) {
  const auto path = write_temp("google_golden.csv", kGolden);
  const IngestResult result = GoogleTraceSource(path).load();

  EXPECT_EQ(result.report.rows_total, 9u);
  EXPECT_EQ(result.report.rows_used, 9u);
  EXPECT_EQ(result.report.rows_skipped, 0u);
  EXPECT_EQ(result.report.source, "google:" + path);

  const trace::Trace& trace = result.trace;
  ASSERT_EQ(trace.job_count(), 1u);  // job 99 never ran
  EXPECT_DOUBLE_EQ(trace.horizon_s, 200.0);

  const trace::JobRecord& job = trace.jobs[0];
  EXPECT_EQ(job.id, 42u);
  EXPECT_DOUBLE_EQ(job.arrival_s, 50.0);
  EXPECT_EQ(job.structure, trace::JobStructure::kBagOfTasks);
  ASSERT_EQ(job.tasks.size(), 2u);

  const trace::TaskRecord& t0 = job.tasks[0];
  EXPECT_EQ(t0.index_in_job, 0u);
  EXPECT_DOUBLE_EQ(t0.length_s, 140.0);
  EXPECT_DOUBLE_EQ(t0.memory_mb, 256.0);
  EXPECT_EQ(t0.priority, 4);  // trace 0..11 -> paper 1..12
  ASSERT_EQ(t0.failure_dates.size(), 1u);
  EXPECT_DOUBLE_EQ(t0.failure_dates[0], 60.0);

  const trace::TaskRecord& t1 = job.tasks[1];
  EXPECT_EQ(t1.index_in_job, 1u);
  EXPECT_DOUBLE_EQ(t1.length_s, 30.0);
  EXPECT_DOUBLE_EQ(t1.memory_mb, 128.0);
  ASSERT_EQ(t1.failure_dates.size(), 1u);
  EXPECT_DOUBLE_EQ(t1.failure_dates[0], 30.0);  // killed at the end

  // Both tasks fail within their own length: the job survives the paper's
  // sample-job filter.
  trace::Trace filtered = trace;
  apply_sample_job_filter(filtered);
  EXPECT_EQ(filtered.job_count(), 1u);
}

TEST(GoogleSource, MalformedRowsAreSkippedAndReportedExactly) {
  // Valid rows for one finishing task, interleaved with five broken rows.
  const auto path = write_temp(
      "google_malformed.csv",
      "100000000,,7,0,m1,0,u,0,2,0.0,0.5,0.0,0\n"   // line 1: ok
      "1,2,3\n"                                      // line 2: too few fields
      "100000000,,7,0,m1,1,u,0,2,0.0,0.5,0.0,0\n"   // line 3: ok
      "abc,,7,0,m1,2,u,0,2,0.0,0.5,0.0,0\n"         // line 4: bad timestamp
      "150000000,,7,0,m1,9,u,0,2,0.0,0.5,0.0,0\n"   // line 5: bad event type
      "150000000,,7,0,m1,2,u,0,99,0.0,0.5,0.0,0\n"  // line 6: bad priority
      "140000000,,7,0,m1,2,u,0,2,0.0,0.5,0.0,0\n"   // line 7: ok (EVICT)*
      "200000000,,7,0,m1,4,u,0,2,0.0,0.5,0.0,0\n"   // line 8: ok (FINISH)
  );
  // *per-task monotonicity only counts accepted rows: lines 5/6 (150s) were
  // skipped, so the 140s EVICT is in order and yields a failure at 40s of
  // active time.
  const IngestResult result = GoogleTraceSource(path).load();

  EXPECT_EQ(result.report.rows_total, 8u);
  EXPECT_EQ(result.report.rows_used, 4u);
  EXPECT_EQ(result.report.rows_skipped, 4u);
  ASSERT_EQ(result.report.skipped.size(), 4u);
  EXPECT_EQ(result.report.skipped[0].line_number, 2u);
  EXPECT_EQ(result.report.skipped[1].line_number, 4u);
  EXPECT_EQ(result.report.skipped[2].line_number, 5u);
  EXPECT_EQ(result.report.skipped[3].line_number, 6u);
  EXPECT_NE(result.report.skipped[2].reason.find("unknown event type"),
            std::string::npos);
  EXPECT_NE(result.report.summary().find("8 rows, 4 used, 4 skipped"),
            std::string::npos);

  ASSERT_EQ(result.trace.job_count(), 1u);
  const trace::TaskRecord& task = result.trace.jobs[0].tasks.at(0);
  ASSERT_EQ(task.failure_dates.size(), 1u);
  EXPECT_DOUBLE_EQ(task.failure_dates[0], 40.0);
}

TEST(GoogleSource, RejectsTrulyOutOfOrderTaskTimestamps) {
  const auto path = write_temp(
      "google_unordered.csv",
      "200000000,,7,0,m1,0,u,0,2,0.0,0.5,0.0,0\n"
      "100000000,,7,0,m1,1,u,0,2,0.0,0.5,0.0,0\n");  // before the SUBMIT
  const IngestResult result = GoogleTraceSource(path).load();
  EXPECT_EQ(result.report.rows_skipped, 1u);
  EXPECT_NE(result.report.skipped[0].reason.find("out-of-order"),
            std::string::npos);
}

TEST(GoogleSource, CensoredTaskRunsToTraceEnd) {
  // Scheduled at 100s, never finishes; the last event anywhere is 400s, so
  // the task's censored length is 300s.
  const auto path = write_temp(
      "google_censored.csv",
      "100000000,,1,0,m1,0,u,0,0,0.0,0.1,0.0,0\n"
      "100000000,,1,0,m1,1,u,0,0,0.0,0.1,0.0,0\n"
      "400000000,,2,0,m1,0,u,0,0,0.0,0.1,0.0,0\n");
  const IngestResult result = GoogleTraceSource(path).load();
  ASSERT_EQ(result.trace.job_count(), 1u);
  EXPECT_DOUBLE_EQ(result.trace.jobs[0].tasks[0].length_s, 300.0);
  EXPECT_TRUE(result.trace.jobs[0].tasks[0].failure_dates.empty());
}

TEST(GoogleSource, MissingFileThrows) {
  EXPECT_THROW((void)GoogleTraceSource("/nonexistent/task_events.csv").load(),
               std::runtime_error);
}

TEST(GoogleSource, ProbeFailsFastWithoutIngesting) {
  EXPECT_THROW(GoogleTraceSource("/nonexistent/task_events.csv").probe(),
               std::runtime_error);
  const auto path = write_temp("google_probe.csv", kGolden);
  GoogleTraceSource(path).probe();  // opens: no throw, no ingestion
}

TEST(GoogleSource, EmptyLogYieldsEmptyTrace) {
  const auto path = write_temp("google_empty.csv", "\n\n");
  const IngestResult result = GoogleTraceSource(path).load();
  EXPECT_EQ(result.trace.job_count(), 0u);
  EXPECT_EQ(result.report.rows_total, 0u);
}

TEST(GoogleSource, OptionsParseStrictly) {
  EXPECT_DOUBLE_EQ(parse_google_options("").memory_scale_mb, 1024.0);
  EXPECT_DOUBLE_EQ(parse_google_options("memory_scale_mb=2048").memory_scale_mb,
                   2048.0);
  EXPECT_THROW((void)parse_google_options("memory_scale_mb=-1"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_google_options("memory_scale_mb=abc"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_google_options("bogus=1"), std::invalid_argument);
  EXPECT_THROW((void)parse_google_options("no_equals"),
               std::invalid_argument);
}

TEST(GoogleSource, FixtureWriterRoundTripsGeneratedTraces) {
  trace::GeneratorConfig cfg;
  cfg.seed = 3;
  cfg.horizon_s = 2.0 * 3600.0;
  cfg.sample_job_filter = false;
  cfg.workload.long_service_fraction = 0.0;
  const trace::Trace original = trace::TraceGenerator(cfg).generate();
  ASSERT_GT(original.job_count(), 0u);

  std::stringstream buf;
  const std::size_t rows = write_task_events(buf, original);
  EXPECT_EQ(rows, count_task_events(original));

  const auto path = write_temp("google_roundtrip.csv", buf.str());
  const IngestResult result = GoogleTraceSource(path).load();
  EXPECT_EQ(result.report.rows_total, rows);
  EXPECT_EQ(result.report.rows_skipped, 0u);
  ASSERT_EQ(result.trace.job_count(), original.job_count());

  // Ingestion rebases time so the earliest event is t = 0; compare
  // arrivals relative to the first job's.
  const double rebase = original.jobs[0].arrival_s;
  for (std::size_t j = 0; j < original.jobs.size(); ++j) {
    const auto& a = original.jobs[j];
    const auto& b = result.trace.jobs[j];
    EXPECT_EQ(a.id, b.id);
    ASSERT_EQ(a.tasks.size(), b.tasks.size());
    EXPECT_NEAR(a.arrival_s - rebase, b.arrival_s, 1e-5);
    for (std::size_t i = 0; i < a.tasks.size(); ++i) {
      const auto& ta = a.tasks[i];
      const auto& tb = b.tasks[i];
      EXPECT_NEAR(ta.length_s, tb.length_s, 1e-5);
      EXPECT_NEAR(ta.memory_mb, tb.memory_mb, 1e-6);
      EXPECT_EQ(ta.priority, tb.priority);
      // Failure dates beyond the productive length are unobservable in an
      // event log; within the length they round-trip (to us rounding).
      const std::size_t observable = ta.failures_within(ta.length_s);
      ASSERT_EQ(tb.failure_dates.size(), observable);
      for (std::size_t f = 0; f < observable; ++f) {
        EXPECT_NEAR(ta.failure_dates[f], tb.failure_dates[f], 1e-5);
      }
    }
  }
}

}  // namespace
}  // namespace cloudcr::ingest
