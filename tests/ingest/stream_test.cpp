// TaskStream contract tests: draining a source's stream reproduces load()
// exactly (for every built-in source kind), chunk boundaries cannot change
// the yielded sequence (batch of 1, batch larger than the trace), the
// IngestReport accumulates incrementally to the load() totals, and the
// google source's censored-tail accounting is surfaced.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ingest/google_source.hpp"
#include "ingest/registry.hpp"
#include "ingest/source.hpp"
#include "ingest/stream.hpp"
#include "ingest/synthetic_source.hpp"
#include "trace/generator.hpp"
#include "trace/trace_io.hpp"

namespace cloudcr::ingest {
namespace {

/// Byte-exact trace comparison via the trace_io serialization (covers every
/// record field, including failure dates and priority changes).
std::string csv_of(const trace::Trace& trace) {
  std::ostringstream os;
  trace::write_csv(os, trace);
  return os.str();
}

trace::GeneratorConfig small_config(std::uint64_t seed) {
  trace::GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.horizon_s = 2.0 * 3600.0;
  cfg.arrival_rate = 0.05;
  return cfg;
}

std::string write_google_fixture(const char* name, std::uint64_t seed) {
  trace::GeneratorConfig cfg = small_config(seed);
  cfg.sample_job_filter = false;
  cfg.workload.long_service_fraction = 0.0;
  const trace::Trace trace = trace::TraceGenerator(cfg).generate();
  std::ofstream os(name);
  write_task_events(os, trace);
  return name;
}

void expect_drain_equals_load(const TraceSource& source) {
  const IngestResult loaded = source.load();
  auto stream = source.open_stream();
  const IngestResult drained = drain(*stream);

  EXPECT_EQ(csv_of(loaded.trace), csv_of(drained.trace));
  EXPECT_EQ(loaded.trace.horizon_s, drained.trace.horizon_s);
  EXPECT_EQ(loaded.report.source, drained.report.source);
  EXPECT_EQ(loaded.report.rows_total, drained.report.rows_total);
  EXPECT_EQ(loaded.report.rows_used, drained.report.rows_used);
  EXPECT_EQ(loaded.report.rows_skipped, drained.report.rows_skipped);
  EXPECT_EQ(loaded.report.censored_tail_count,
            drained.report.censored_tail_count);
  EXPECT_TRUE(stream->exhausted());
}

TEST(TaskStream, SyntheticDrainEqualsLoad) {
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    SyntheticSource source(small_config(seed));
    expect_drain_equals_load(source);
  }
}

TEST(TaskStream, SyntheticStreamsLazily) {
  SyntheticSource source(small_config(7));
  EXPECT_TRUE(source.streams_lazily());
  GoogleTraceSource google("unused.csv");
  EXPECT_FALSE(google.streams_lazily());
}

TEST(TaskStream, GoogleDrainEqualsLoad) {
  const std::string path =
      write_google_fixture("stream_test_google_task_events.csv", 21);
  GoogleTraceSource source(path);
  expect_drain_equals_load(source);
}

TEST(TaskStream, CsvDrainEqualsLoad) {
  const trace::Trace trace =
      trace::TraceGenerator(small_config(31)).generate();
  const char* path = "stream_test_native.csv";
  trace::write_csv_file(path, trace);
  const auto source =
      TraceSourceRegistry::instance().make(std::string("csv:") + path);
  expect_drain_equals_load(*source);
}

TEST(TaskStream, ChunkBoundariesCannotChangeTheSequence) {
  SyntheticSource source(small_config(42));
  const trace::Trace reference = source.load().trace;
  ASSERT_GT(reference.jobs.size(), 2u);

  // Batch of 1: every boundary is a chunk boundary.
  {
    auto stream = source.open_stream();
    std::vector<trace::JobRecord> jobs;
    while (stream->next_batch(1, jobs) > 0) {
    }
    trace::Trace got;
    got.jobs = std::move(jobs);
    got.horizon_s = stream->horizon_s();
    EXPECT_EQ(csv_of(reference), csv_of(got));
  }

  // Batch far larger than the trace: one chunk, then exhaustion.
  {
    auto stream = source.open_stream();
    std::vector<trace::JobRecord> jobs;
    EXPECT_EQ(stream->next_batch(1u << 20, jobs), reference.jobs.size());
    EXPECT_EQ(stream->next_batch(1u << 20, jobs), 0u);
    EXPECT_TRUE(stream->exhausted());
    trace::Trace got;
    got.jobs = std::move(jobs);
    got.horizon_s = stream->horizon_s();
    EXPECT_EQ(csv_of(reference), csv_of(got));
  }
}

TEST(TaskStream, ReportAccumulatesIncrementally) {
  SyntheticSource source(small_config(5));
  const IngestResult loaded = source.load();

  auto stream = source.open_stream();
  std::vector<trace::JobRecord> jobs;
  std::size_t last_total = 0;
  while (stream->next_batch(1, jobs) > 0) {
    // Counts only ever grow, and cover exactly the jobs yielded so far.
    EXPECT_GE(stream->report().rows_total, last_total);
    last_total = stream->report().rows_total;
    std::size_t tasks = 0;
    for (const auto& job : jobs) tasks += job.tasks.size();
    EXPECT_EQ(stream->report().rows_total, tasks);
  }
  EXPECT_EQ(stream->report().rows_total, loaded.report.rows_total);
  EXPECT_EQ(stream->report().rows_used, loaded.report.rows_used);
}

TEST(TaskStream, GoogleCensoredTailsAreCountedAndSurfaced) {
  // Two tasks: one finishes, one is still running when the log ends (its
  // length is the censored accrued execution up to the last event).
  const char* path = "stream_test_censored_task_events.csv";
  {
    std::ofstream os(path);
    os << "0,,1,0,m1,0,user,0,3,0.0,0.05,0.0,0\n"     // job 1 SUBMIT
       << "1000000,,1,0,m1,1,user,0,3,0.0,0.05,0.0,0\n"  // SCHEDULE
       << "5000000,,1,0,m1,4,user,0,3,0.0,0.05,0.0,0\n"  // FINISH at t=5s
       << "2000000,,2,0,m2,0,user,0,3,0.0,0.05,0.0,0\n"  // job 2 SUBMIT
       << "3000000,,2,0,m2,1,user,0,3,0.0,0.05,0.0,0\n"  // SCHEDULE
       << "6000000,,3,0,m3,0,user,0,3,0.0,0.05,0.0,0\n";  // later SUBMIT only
  }
  GoogleTraceSource source(path);
  const IngestResult result = source.load();
  EXPECT_EQ(result.report.censored_tail_count, 1u);
  EXPECT_NE(result.report.summary().find("1 censored tails"),
            std::string::npos);
  // The censored task's length runs to the last event (t = 6 s): scheduled
  // at 3 s, so 3 s of accrued execution.
  ASSERT_EQ(result.trace.jobs.size(), 2u);
  const auto& censored_job = result.trace.jobs[1];
  ASSERT_EQ(censored_job.tasks.size(), 1u);
  EXPECT_DOUBLE_EQ(censored_job.tasks[0].length_s, 3.0);
}

}  // namespace
}  // namespace cloudcr::ingest
