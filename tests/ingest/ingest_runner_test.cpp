// The acceptance property for ingested workloads: a ScenarioSpec naming
// `trace.source=google:<fixture>` round-trips through serialization, runs
// under BatchRunner, and produces bit-identical SimResults to the
// equivalent pre-built in-memory trace::Trace supplied via RunHooks.

#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "api/batch.hpp"
#include "api/runner.hpp"
#include "api/scenario.hpp"
#include "ingest/google_source.hpp"
#include "ingest/registry.hpp"
#include "ingest/source.hpp"
#include "trace/generator.hpp"

namespace cloudcr::api {
namespace {

/// Doubles compared with EXPECT_EQ throughout: the guarantee under test is
/// bit-identity, not approximation.
void expect_same_result(const sim::SimResult& a, const sim::SimResult& b) {
  EXPECT_EQ(a.incomplete_jobs, b.incomplete_jobs);
  EXPECT_EQ(a.total_checkpoints, b.total_checkpoints);
  EXPECT_EQ(a.total_failures, b.total_failures);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    const auto& oa = a.outcomes[i];
    const auto& ob = b.outcomes[i];
    EXPECT_EQ(oa.job_id, ob.job_id);
    EXPECT_EQ(oa.priority, ob.priority);
    EXPECT_EQ(oa.workload_s, ob.workload_s);
    EXPECT_EQ(oa.wallclock_s, ob.wallclock_s);
    EXPECT_EQ(oa.task_wallclock_s, ob.task_wallclock_s);
    EXPECT_EQ(oa.queue_s, ob.queue_s);
    EXPECT_EQ(oa.checkpoint_s, ob.checkpoint_s);
    EXPECT_EQ(oa.rollback_s, ob.rollback_s);
    EXPECT_EQ(oa.restart_s, ob.restart_s);
    EXPECT_EQ(oa.checkpoints, ob.checkpoints);
    EXPECT_EQ(oa.failures, ob.failures);
  }
}

std::string write_google_fixture(const std::string& name) {
  trace::GeneratorConfig cfg;
  cfg.seed = 11;
  cfg.horizon_s = 3.0 * 3600.0;
  cfg.sample_job_filter = false;  // the spec applies the filter at replay
  cfg.workload.long_service_fraction = 0.0;
  const trace::Trace trace = trace::TraceGenerator(cfg).generate();

  const std::string path = testing::TempDir() + "/" + name;
  std::ofstream os(path);
  ingest::write_task_events(os, trace);
  return path;
}

TEST(IngestedScenario, RoundTripsRunsUnderBatchAndMatchesInMemoryTrace) {
  const std::string path = write_google_fixture("runner_fixture.csv");

  ScenarioSpec spec;
  spec.name = "ingested_google";
  spec.trace.source = "google:" + path;
  spec.trace.sample_job_filter = true;
  spec.policy = "formula3";
  spec.predictor = "grouped";
  spec.placement = sim::PlacementMode::kForceShared;

  // 1. The spec (including the source) survives serialization exactly.
  const ScenarioSpec parsed = parse_scenario(serialize(spec));
  ASSERT_EQ(parsed, spec);
  ASSERT_EQ(parsed.trace.source, spec.trace.source);

  // 2. The equivalent in-memory trace: ingest once by hand, then apply the
  // same post-processing the spec asks for.
  trace::Trace in_memory =
      ingest::TraceSourceRegistry::instance().make(spec.trace.source)
          ->load()
          .trace;
  ingest::apply_sample_job_filter(in_memory);
  ASSERT_GT(in_memory.job_count(), 0u);

  // 3. Parallel batch over the parsed spec (two specs so the trace cache
  // and the pool genuinely engage) vs direct runs on the in-memory trace.
  std::vector<ScenarioSpec> specs = {parsed, parsed};
  specs[1].policy = "young";
  const auto batch = BatchRunner().run(specs);

  RunHooks hooks;
  hooks.replay_trace = &in_memory;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const RunArtifact direct = run_scenario(specs[i], hooks);
    EXPECT_EQ(batch[i].trace_jobs, direct.trace_jobs);
    EXPECT_EQ(batch[i].trace_tasks, direct.trace_tasks);
    expect_same_result(batch[i].result, direct.result);
  }
}

TEST(IngestedScenario, EstimationSourcesWorkOnIngestedTraces) {
  const std::string path = write_google_fixture("runner_estimation.csv");
  ScenarioSpec spec;
  spec.name = "ingested_full_estimation";
  spec.trace.source = "google:" + path;
  spec.trace.sample_job_filter = true;
  spec.trace.replay_max_task_length_s = 1800.0;
  spec.estimation = EstimationSource::kFull;
  const RunArtifact artifact = run_scenario(spec);
  EXPECT_GT(artifact.trace_jobs, 0u);
  EXPECT_GT(artifact.result.outcomes.size(), 0u);
}

TEST(IngestedScenario, GeneratorOnlyFieldsDoNotAffectIngestedRuns) {
  // The log decides the workload: specs differing only in generator-only
  // fields (seed, horizon, arrival rate) must produce identical results —
  // and may therefore share one cached ingestion inside BatchRunner.
  const std::string path = write_google_fixture("runner_seed_invariance.csv");
  ScenarioSpec a;
  a.name = "seed_a";
  a.trace.source = "google:" + path;
  a.trace.sample_job_filter = true;
  ScenarioSpec b = a;
  b.name = "seed_b";
  b.trace.seed = 999;
  b.trace.horizon_s = 1.0;
  b.trace.arrival_rate = 5.0;
  const auto artifacts = BatchRunner().run({a, b});
  EXPECT_EQ(artifacts[0].trace_jobs, artifacts[1].trace_jobs);
  expect_same_result(artifacts[0].result, artifacts[1].result);
}

TEST(IngestedScenario, UnknownSourceSchemeFailsLoudly) {
  ScenarioSpec spec;
  spec.trace.source = "parquet:/nope";
  EXPECT_THROW((void)run_scenario(spec), std::invalid_argument);
}

TEST(IngestedScenario, MissingLogFailsLoudly) {
  ScenarioSpec spec;
  spec.trace.source = "google:/nonexistent/task_events.csv";
  EXPECT_THROW((void)run_scenario(spec), std::runtime_error);
}

}  // namespace
}  // namespace cloudcr::api
