// Trace characterization: counts, arrival rate, priority mix, memory
// distribution, and per-priority MTBF.

#include "ingest/profile.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "trace/generator.hpp"

namespace cloudcr::ingest {
namespace {

trace::Trace tiny_trace() {
  trace::Trace t;
  t.horizon_s = 100.0;

  trace::JobRecord a;
  a.id = 1;
  a.arrival_s = 0.0;
  a.structure = trace::JobStructure::kSequentialTasks;
  trace::TaskRecord a0;
  a0.length_s = 50.0;
  a0.memory_mb = 100.0;
  a0.priority = 1;
  a0.failure_dates = {10.0, 30.0};  // two failures within the length
  a.tasks.push_back(a0);
  t.jobs.push_back(a);

  trace::JobRecord b;
  b.id = 2;
  b.arrival_s = 40.0;
  b.structure = trace::JobStructure::kBagOfTasks;
  trace::TaskRecord b0;
  b0.length_s = 20.0;
  b0.memory_mb = 300.0;
  b0.priority = 5;
  b.tasks.push_back(b0);
  b.tasks.push_back(b0);
  t.jobs.push_back(b);
  return t;
}

TEST(Profile, ComputesShapeAndMarginals) {
  const TraceProfile p = profile(tiny_trace());
  EXPECT_EQ(p.jobs, 2u);
  EXPECT_EQ(p.tasks, 3u);
  EXPECT_EQ(p.st_jobs, 1u);
  EXPECT_EQ(p.bot_jobs, 1u);
  EXPECT_DOUBLE_EQ(p.horizon_s, 100.0);
  EXPECT_DOUBLE_EQ(p.arrival_rate, 0.02);  // 2 jobs / 100 s

  EXPECT_DOUBLE_EQ(p.task_length_s.min(), 20.0);
  EXPECT_DOUBLE_EQ(p.task_length_s.max(), 50.0);
  EXPECT_DOUBLE_EQ(p.task_memory_mb.mean(), (100.0 + 300.0 + 300.0) / 3.0);

  EXPECT_EQ(p.priority_tasks[0], 1u);  // priority 1
  EXPECT_EQ(p.priority_tasks[4], 2u);  // priority 5
  EXPECT_EQ(p.priority_tasks[11], 0u);

  // Priority 1: one task, two failures.
  EXPECT_EQ(p.by_priority[0].task_count, 1u);
  EXPECT_DOUBLE_EQ(p.by_priority[0].mnof, 2.0);
  // Priority 5: two clean tasks -> MTBF is the censored full length.
  EXPECT_DOUBLE_EQ(p.by_priority[4].mnof, 0.0);
  EXPECT_DOUBLE_EQ(p.by_priority[4].mtbf, 20.0);
  EXPECT_EQ(p.overall.task_count, 3u);
}

TEST(Profile, EmptyTraceIsSafe) {
  const TraceProfile p = profile(trace::Trace{});
  EXPECT_EQ(p.jobs, 0u);
  EXPECT_EQ(p.tasks, 0u);
  EXPECT_DOUBLE_EQ(p.arrival_rate, 0.0);
  std::ostringstream os;
  print_profile(os, p);  // must not crash or divide by zero
  EXPECT_NE(os.str().find("jobs: 0"), std::string::npos);
}

TEST(Profile, PrintsPerPriorityTable) {
  std::ostringstream os;
  print_profile(os, profile(tiny_trace()), "tiny");
  const std::string out = os.str();
  EXPECT_NE(out.find("== tiny =="), std::string::npos);
  EXPECT_NE(out.find("arrival rate: 0.0200 jobs/s"), std::string::npos);
  EXPECT_NE(out.find("MTBF"), std::string::npos);
  // Only the populated priorities appear.
  EXPECT_NE(out.find("|        1 |"), std::string::npos);
  EXPECT_NE(out.find("|        5 |"), std::string::npos);
  EXPECT_EQ(out.find("|       12 |"), std::string::npos);
}

TEST(Profile, SyntheticTraceLandsNearPaperMarginals) {
  // The generator's defaults reproduce Fig 8's shape; the profile of a
  // generated day should land near the configured arrival density and keep
  // memory under the 1 GB VM size.
  trace::GeneratorConfig cfg;
  cfg.seed = 9;
  cfg.horizon_s = 86400.0;
  cfg.sample_job_filter = false;
  const TraceProfile p = profile(trace::TraceGenerator(cfg).generate());
  EXPECT_NEAR(p.arrival_rate, 0.116, 0.02);
  EXPECT_LE(p.task_memory_mb.max(), 1024.0);
  EXPECT_GT(p.overall.mtbf, 0.0);
}

}  // namespace
}  // namespace cloudcr::ingest
