// MappedCsvSource: declarative column mapping (names, units, priority
// remapping), malformed-row recovery, and structure/index inference.

#include "ingest/csv_source.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <string>

namespace cloudcr::ingest {
namespace {

std::string write_temp(const std::string& name, const std::string& content) {
  const std::string path = testing::TempDir() + "/" + name;
  std::ofstream os(path);
  os << content;
  return path;
}

TEST(ColumnMapping, ParsesDeclarativeText) {
  const ColumnMapping m = parse_mapping(
      "job_id=jid,arrival=when,length=dur,memory=mem,priority=prio,"
      "failures=kills,time_unit=ms,memory_unit=kb,priority_offset=1");
  EXPECT_EQ(m.job_id, "jid");
  EXPECT_EQ(m.arrival, "when");
  EXPECT_EQ(m.length, "dur");
  EXPECT_EQ(m.memory, "mem");
  EXPECT_EQ(m.priority, "prio");
  EXPECT_EQ(m.failures, "kills");
  EXPECT_DOUBLE_EQ(m.time_scale, 1e-3);
  EXPECT_DOUBLE_EQ(m.memory_scale, 1.0 / 1024.0);
  EXPECT_EQ(m.priority_offset, 1);
}

TEST(ColumnMapping, EmptyTextKeepsNativeDefaults) {
  const ColumnMapping m = parse_mapping("");
  EXPECT_EQ(m.job_id, "job_id");
  EXPECT_DOUBLE_EQ(m.time_scale, 1.0);
  EXPECT_EQ(m.priority_offset, 0);
}

TEST(ColumnMapping, RejectsMalformedText) {
  EXPECT_THROW((void)parse_mapping("no_equals"), std::invalid_argument);
  // An unknown key names the keys that would have worked.
  try {
    (void)parse_mapping("bogus_key=x");
    ADD_FAILURE() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bogus_key"), std::string::npos);
    EXPECT_NE(what.find("priority_offset"), std::string::npos);
    EXPECT_NE(what.find("time_unit"), std::string::npos);
  }
  EXPECT_THROW((void)parse_mapping("time_unit=fortnights"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_mapping("memory_unit=floppies"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_mapping("priority_offset=abc"),
               std::invalid_argument);
}

TEST(MappedCsv, ConvertsUnitsAndRemapsPriorities) {
  // Times in ms, memory in KB, priorities on the Google 0..11 scale.
  const auto path = write_temp(
      "mapped_units.csv",
      "jid,when,dur,mem,prio,kills\n"
      "1,1000,60000,2048,0,10000;20000\n"
      "2,2500,30000,1024,11,\n");
  const ColumnMapping mapping = parse_mapping(
      "job_id=jid,arrival=when,length=dur,memory=mem,priority=prio,"
      "failures=kills,time_unit=ms,memory_unit=kb,priority_offset=1");
  const IngestResult result = MappedCsvSource(path, mapping).load();

  EXPECT_EQ(result.report.rows_total, 2u);
  EXPECT_EQ(result.report.rows_skipped, 0u);
  ASSERT_EQ(result.trace.job_count(), 2u);

  const auto& j1 = result.trace.jobs[0];
  EXPECT_EQ(j1.id, 1u);
  EXPECT_DOUBLE_EQ(j1.arrival_s, 1.0);
  ASSERT_EQ(j1.tasks.size(), 1u);
  EXPECT_DOUBLE_EQ(j1.tasks[0].length_s, 60.0);
  EXPECT_DOUBLE_EQ(j1.tasks[0].memory_mb, 2.0);
  EXPECT_EQ(j1.tasks[0].priority, 1);
  ASSERT_EQ(j1.tasks[0].failure_dates.size(), 2u);
  EXPECT_DOUBLE_EQ(j1.tasks[0].failure_dates[0], 10.0);
  EXPECT_DOUBLE_EQ(j1.tasks[0].failure_dates[1], 20.0);

  EXPECT_EQ(result.trace.jobs[1].tasks[0].priority, 12);
  // Horizon: latest failure-free completion, max(arrival + critical path)
  // = max(1 + 60, 2.5 + 30).
  EXPECT_DOUBLE_EQ(result.trace.horizon_s, 61.0);
}

TEST(MappedCsv, NativeSchemaNeedsNoMapping) {
  const auto path = write_temp(
      "mapped_native.csv",
      "job_id,arrival_s,length_s,memory_mb,priority,failure_dates\n"
      "5,0.5,100.0,64.0,3,25.0\n");
  const IngestResult result = MappedCsvSource(path).load();
  ASSERT_EQ(result.trace.job_count(), 1u);
  EXPECT_EQ(result.trace.jobs[0].tasks[0].priority, 3);
  EXPECT_DOUBLE_EQ(result.trace.jobs[0].tasks[0].failure_dates[0], 25.0);
  // No parser-visible input size in a log: the length stands in.
  EXPECT_DOUBLE_EQ(result.trace.jobs[0].tasks[0].input_size, 100.0);
}

TEST(MappedCsv, MalformedRowsAreSkippedWithLineNumbers) {
  const auto path = write_temp(
      "mapped_malformed.csv",
      "job_id,arrival_s,length_s,memory_mb,priority,failure_dates\n"
      "1,0.0,100.0,64.0,3,\n"        // line 2: ok
      "2,0.0,100.0\n"                // line 3: wrong field count
      "3,0.0,abc,64.0,3,\n"          // line 4: bad number
      "4,0.0,-5.0,64.0,3,\n"         // line 5: non-positive length
      "5,0.0,100.0,64.0,40,\n"       // line 6: priority out of range
      "6,0.0,100.0,64.0,3,9.0;4.0\n"  // line 7: unsorted failures
      "7,0.0,1e999,64.0,3,\n"        // line 8: out-of-range number
      "8,0.0,100.0,64.0,3,5.0;5.0\n"  // line 9: duplicate failure date
      "9,0.0,100.0,64.0,3,\n");      // line 10: ok
  const IngestResult result = MappedCsvSource(path).load();
  EXPECT_EQ(result.report.rows_total, 9u);
  EXPECT_EQ(result.report.rows_used, 2u);
  EXPECT_EQ(result.report.rows_skipped, 7u);
  ASSERT_EQ(result.report.skipped.size(), 7u);
  EXPECT_EQ(result.report.skipped[0].line_number, 3u);
  EXPECT_EQ(result.report.skipped[5].line_number, 8u);
  EXPECT_NE(result.report.skipped[5].reason.find("out of range"),
            std::string::npos);
  EXPECT_NE(result.report.skipped[6].reason.find("strictly increasing"),
            std::string::npos);
  EXPECT_EQ(result.trace.job_count(), 2u);
}

TEST(MappedCsv, InfersStructureAndTaskIndices) {
  // No structure or task_index columns: multi-task jobs become BoT and
  // tasks number in row order.
  const auto path = write_temp(
      "mapped_inferred.csv",
      "job_id,arrival_s,length_s,memory_mb,priority,failure_dates\n"
      "1,0.0,10.0,64.0,1,\n"
      "1,0.0,20.0,64.0,1,\n"
      "2,1.0,10.0,64.0,1,\n");
  const ColumnMapping mapping =
      parse_mapping("task_index=,structure=,failures=failure_dates");
  const IngestResult result = MappedCsvSource(path, mapping).load();
  ASSERT_EQ(result.trace.job_count(), 2u);
  EXPECT_EQ(result.trace.jobs[0].structure,
            trace::JobStructure::kBagOfTasks);
  EXPECT_EQ(result.trace.jobs[0].tasks[1].index_in_job, 1u);
  EXPECT_EQ(result.trace.jobs[1].structure,
            trace::JobStructure::kSequentialTasks);
}

TEST(MappedCsv, ExplicitStructureColumnWins) {
  const auto path = write_temp(
      "mapped_structure.csv",
      "job_id,structure,arrival_s,length_s,memory_mb,priority\n"
      "1,ST,0.0,10.0,64.0,1\n"
      "1,ST,0.0,20.0,64.0,1\n");
  const ColumnMapping mapping = parse_mapping("failures=");
  const IngestResult result = MappedCsvSource(path, mapping).load();
  ASSERT_EQ(result.trace.job_count(), 1u);
  EXPECT_EQ(result.trace.jobs[0].structure,
            trace::JobStructure::kSequentialTasks);
}

TEST(MappedCsv, MissingRequiredColumnThrows) {
  const auto path = write_temp("mapped_missing.csv",
                               "job_id,arrival_s,length_s,memory_mb\n");
  EXPECT_THROW((void)MappedCsvSource(path).load(), std::runtime_error);
}

TEST(MappedCsv, MissingFileThrows) {
  EXPECT_THROW((void)MappedCsvSource("/nonexistent/jobs.csv").load(),
               std::runtime_error);
}

TEST(MappedCsv, ToleratesCrlfAndTrailingBlankLines) {
  const auto path = write_temp(
      "mapped_crlf.csv",
      "job_id,arrival_s,length_s,memory_mb,priority,failure_dates\r\n"
      "1,0.0,10.0,64.0,1,\r\n"
      "\r\n"
      "   \n"
      "\n");
  const IngestResult result = MappedCsvSource(path).load();
  EXPECT_EQ(result.report.rows_total, 1u);
  EXPECT_EQ(result.report.rows_skipped, 0u);
  EXPECT_EQ(result.trace.job_count(), 1u);
}

}  // namespace
}  // namespace cloudcr::ingest
