// SlurmTraceSource: header'd whitespace table -> trace mapping (DURATION /
// WCLIMIT lengths, NODES -> BoT replication, unit options), exact
// skipped-row reporting, and registry round-trips.

#include "ingest/slurm_source.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "ingest/registry.hpp"
#include "ingest/stream.hpp"

namespace cloudcr::ingest {
namespace {

std::string write_temp(const std::string& name, const std::string& content) {
  const std::string path = testing::TempDir() + "/" + name;
  std::ofstream os(path);
  os << content;
  return path;
}

TEST(SlurmOptions, ParsesDeclarativeText) {
  const SlurmOptions o =
      parse_slurm_options("time_unit=ms,wclimit_unit=h,mem_mb=2048");
  EXPECT_DOUBLE_EQ(o.time_scale, 1e-3);
  EXPECT_DOUBLE_EQ(o.wclimit_scale, 3600.0);
  EXPECT_DOUBLE_EQ(o.default_mem_mb, 2048.0);
}

TEST(SlurmOptions, EmptyTextKeepsSlurmDefaults) {
  const SlurmOptions o = parse_slurm_options("");
  EXPECT_DOUBLE_EQ(o.time_scale, 1.0);
  // Slurm prints wall limits in minutes.
  EXPECT_DOUBLE_EQ(o.wclimit_scale, 60.0);
  EXPECT_DOUBLE_EQ(o.default_mem_mb, 512.0);
}

TEST(SlurmOptions, UnknownKeyErrorListsValidKeys) {
  try {
    (void)parse_slurm_options("bogus=1");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bogus"), std::string::npos);
    EXPECT_NE(what.find("time_unit"), std::string::npos);
    EXPECT_NE(what.find("wclimit_unit"), std::string::npos);
    EXPECT_NE(what.find("mem_mb"), std::string::npos);
  }
  EXPECT_THROW((void)parse_slurm_options("time_unit=fortnights"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_slurm_options("mem_mb=-1"), std::invalid_argument);
}

TEST(SlurmSource, MapsColumnsAndReplicatesNodesIntoBoT) {
  const auto path = write_temp(
      "slurm_basic.log",
      "# sacct export\n"
      "JOBID SUBMIT DURATION NODES MEM_MB PRIORITY\n"
      "101   0.0    120.0    1     256    3\n"
      "102   5.0    60.0     4     128    9\n");
  const IngestResult result = SlurmTraceSource(path).load();

  EXPECT_EQ(result.report.rows_total, 2u);
  EXPECT_EQ(result.report.rows_skipped, 0u);
  ASSERT_EQ(result.trace.job_count(), 2u);

  const auto& st = result.trace.jobs[0];
  EXPECT_EQ(st.id, 101u);
  EXPECT_EQ(st.structure, trace::JobStructure::kSequentialTasks);
  ASSERT_EQ(st.tasks.size(), 1u);
  EXPECT_DOUBLE_EQ(st.tasks[0].length_s, 120.0);
  EXPECT_DOUBLE_EQ(st.tasks[0].memory_mb, 256.0);
  EXPECT_EQ(st.tasks[0].priority, 3);
  EXPECT_TRUE(st.tasks[0].failure_dates.empty());
  // No parser-visible input size in a log: the length stands in.
  EXPECT_DOUBLE_EQ(st.tasks[0].input_size, 120.0);

  // A 4-node allocation becomes a bag of 4 identical tasks.
  const auto& bot = result.trace.jobs[1];
  EXPECT_EQ(bot.structure, trace::JobStructure::kBagOfTasks);
  ASSERT_EQ(bot.tasks.size(), 4u);
  EXPECT_EQ(bot.tasks[3].index_in_job, 3u);
  EXPECT_DOUBLE_EQ(bot.tasks[3].length_s, 60.0);
  EXPECT_EQ(bot.tasks[3].priority, 9);

  // Horizon: max(arrival + critical path) = max(0 + 120, 5 + 60).
  EXPECT_DOUBLE_EQ(result.trace.horizon_s, 120.0);
}

TEST(SlurmSource, WclimitIsTheLengthFallbackInMinutes) {
  // No DURATION column: the requested wall limit (minutes) becomes the
  // length; defaults fill memory (512 MB), priority (5), and tasks (1).
  const auto path = write_temp("slurm_wclimit.log",
                               "JOBID SUBMIT WCLIMIT\n"
                               "7     10.0   2\n");
  const IngestResult result = SlurmTraceSource(path).load();
  ASSERT_EQ(result.trace.job_count(), 1u);
  const auto& task = result.trace.jobs[0].tasks[0];
  EXPECT_DOUBLE_EQ(task.length_s, 120.0);
  EXPECT_DOUBLE_EQ(task.memory_mb, 512.0);
  EXPECT_EQ(task.priority, 5);
  EXPECT_EQ(result.trace.jobs[0].structure,
            trace::JobStructure::kSequentialTasks);
}

TEST(SlurmSource, UnknownColumnsAreIgnored) {
  // Raw sacct dumps carry many extra fields; only the recognized headers
  // matter.
  const auto path = write_temp(
      "slurm_extra.log",
      "JOBID USER PARTITION SUBMIT DURATION STATE\n"
      "1     alice batch    0.0    30.0     COMPLETED\n");
  const IngestResult result = SlurmTraceSource(path).load();
  EXPECT_EQ(result.report.rows_used, 1u);
  ASSERT_EQ(result.trace.job_count(), 1u);
  EXPECT_DOUBLE_EQ(result.trace.jobs[0].tasks[0].length_s, 30.0);
}

TEST(SlurmSource, MalformedRowsAreSkippedWithExactReport) {
  const auto path = write_temp(
      "slurm_malformed.log",
      "JOBID SUBMIT DURATION NODES PRIORITY\n"  // line 1
      "1     0.0    100.0    1     3\n"         // line 2: ok
      "2     0.0    100.0\n"                    // line 3: wrong field count
      "3     0.0    abc      1     3\n"         // line 4: bad number
      "4     0.0    -5.0     1     3\n"         // line 5: non-positive length
      "5     0.0    100.0    0     3\n"         // line 6: zero tasks
      "6     0.0    100.0    1     40\n"        // line 7: priority range
      "1     0.0    100.0    1     3\n"         // line 8: duplicate job id
      "7     -1.0   100.0    1     3\n"         // line 9: negative submit
      "8     0.0    100.0    1     3\n");       // line 10: ok
  const IngestResult result = SlurmTraceSource(path).load();
  EXPECT_EQ(result.report.rows_total, 9u);
  EXPECT_EQ(result.report.rows_used, 2u);
  EXPECT_EQ(result.report.rows_skipped, 7u);
  ASSERT_EQ(result.report.skipped.size(), 7u);
  EXPECT_EQ(result.report.skipped[0].line_number, 3u);
  EXPECT_EQ(result.report.skipped[1].line_number, 4u);
  EXPECT_EQ(result.report.skipped[4].line_number, 7u);
  EXPECT_NE(result.report.skipped[4].reason.find("priority out of range"),
            std::string::npos);
  EXPECT_NE(result.report.skipped[5].reason.find("duplicate job id"),
            std::string::npos);
  EXPECT_EQ(result.trace.job_count(), 2u);
}

TEST(SlurmSource, StructuralProblemsThrow) {
  EXPECT_THROW((void)SlurmTraceSource("/nonexistent/jobs.log").load(),
               std::runtime_error);
  const auto empty = write_temp("slurm_empty.log", "# only comments\n\n");
  EXPECT_THROW((void)SlurmTraceSource(empty).load(), std::runtime_error);
  const auto no_id = write_temp("slurm_no_id.log", "SUBMIT DURATION\n");
  EXPECT_THROW((void)SlurmTraceSource(no_id).load(), std::runtime_error);
  const auto no_len = write_temp("slurm_no_len.log", "JOBID SUBMIT\n");
  EXPECT_THROW((void)SlurmTraceSource(no_len).load(), std::runtime_error);
}

TEST(SlurmSource, JobsSortByArrivalThenId) {
  const auto path = write_temp("slurm_order.log",
                               "JOBID SUBMIT DURATION\n"
                               "9     5.0    10.0\n"
                               "2     1.0    10.0\n"
                               "3     1.0    10.0\n");
  const IngestResult result = SlurmTraceSource(path).load();
  ASSERT_EQ(result.trace.job_count(), 3u);
  EXPECT_EQ(result.trace.jobs[0].id, 2u);
  EXPECT_EQ(result.trace.jobs[1].id, 3u);
  EXPECT_EQ(result.trace.jobs[2].id, 9u);
}

TEST(SlurmSource, StreamedEqualsMaterialized) {
  // The default open_stream() chunks the materialized result; the drained
  // stream must reproduce load() job-for-job, report included.
  const auto path = write_temp("slurm_stream.log",
                               "JOBID SUBMIT DURATION NODES\n"
                               "1     0.0    30.0     2\n"
                               "2     1.0    xx       1\n"  // skipped
                               "3     2.0    45.0     1\n");
  SlurmTraceSource source(path);
  const IngestResult loaded = source.load();

  auto stream = source.open_stream();
  std::vector<trace::JobRecord> streamed;
  std::vector<trace::JobRecord> batch;
  while (stream->next_batch(1, batch) > 0) {
    for (auto& job : batch) streamed.push_back(std::move(job));
    batch.clear();
  }
  ASSERT_EQ(streamed.size(), loaded.trace.job_count());
  for (std::size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(streamed[i].id, loaded.trace.jobs[i].id);
    EXPECT_EQ(streamed[i].tasks.size(), loaded.trace.jobs[i].tasks.size());
  }
  EXPECT_EQ(stream->report().rows_skipped, 1u);
  EXPECT_EQ(stream->report().rows_used, loaded.report.rows_used);
}

TEST(SlurmRegistry, SpecRoundTripsThroughDescribe) {
  const auto path = write_temp("slurm_rt.log",
                               "JOBID SUBMIT DURATION\n"
                               "1     0.0    10.0\n");
  auto source = TraceSourceRegistry::instance().make("slurm:" + path);
  EXPECT_EQ(source->describe(), "slurm:" + path);
  // describe() is itself a valid spec.
  auto again = TraceSourceRegistry::instance().make(source->describe());
  EXPECT_EQ(again->load().trace.job_count(), 1u);
}

TEST(SlurmRegistry, QueryOptionsThreadThroughTheSpec) {
  const auto path = write_temp("slurm_opts.log",
                               "JOBID SUBMIT WCLIMIT\n"
                               "1     0.0    1\n");
  auto source = TraceSourceRegistry::instance().make(
      "slurm:" + path + "?wclimit_unit=h,mem_mb=64");
  const IngestResult result = source->load();
  ASSERT_EQ(result.trace.job_count(), 1u);
  EXPECT_DOUBLE_EQ(result.trace.jobs[0].tasks[0].length_s, 3600.0);
  EXPECT_DOUBLE_EQ(result.trace.jobs[0].tasks[0].memory_mb, 64.0);
  EXPECT_THROW(
      (void)TraceSourceRegistry::instance().make("slurm:" + path + "?nope=1"),
      std::invalid_argument);
  EXPECT_THROW((void)TraceSourceRegistry::instance().make("slurm:"),
               std::invalid_argument);
}

}  // namespace
}  // namespace cloudcr::ingest
