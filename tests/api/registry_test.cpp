// PolicyRegistry / PredictorRegistry: builtin coverage, key-argument
// parsing, unknown-name diagnostics, and custom registration.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "api/registry.hpp"
#include "api/runner.hpp"

namespace cloudcr::api {
namespace {

TEST(SplitKey, SeparatesNameAndArgument) {
  EXPECT_EQ(split_key("formula3").name, "formula3");
  EXPECT_EQ(split_key("formula3").arg, "");
  EXPECT_EQ(split_key("fixed:45").name, "fixed");
  EXPECT_EQ(split_key("fixed:45").arg, "45");
  EXPECT_EQ(split_key("a:b:c").name, "a");
  EXPECT_EQ(split_key("a:b:c").arg, "b:c");
}

TEST(PolicyRegistry, BuiltinsProduceCorrectPolicies) {
  auto& registry = PolicyRegistry::instance();
  EXPECT_EQ(registry.make("formula3")->name(), "formula3");
  EXPECT_EQ(registry.make("formula3:exact")->name(), "formula3");
  EXPECT_EQ(registry.make("young")->name(), "young");
  EXPECT_EQ(registry.make("daly")->name(), "daly");
  EXPECT_EQ(registry.make("none")->name(), "none");
  EXPECT_EQ(registry.make("fixed:45")->name(), "fixed(45s)");
}

TEST(PolicyRegistry, FixedParsesItsInterval) {
  const auto policy = PolicyRegistry::instance().make("fixed:120");
  core::PolicyContext ctx;
  ctx.total_work_s = 1000.0;
  ctx.remaining_work_s = 1000.0;
  ctx.checkpoint_cost_s = 1.0;
  ctx.stats = {1.0, 100.0};
  EXPECT_DOUBLE_EQ(policy->next_interval(ctx), 120.0);
}

TEST(PolicyRegistry, UnknownNameListsRegisteredOnes) {
  try {
    (void)PolicyRegistry::instance().make("nope");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("nope"), std::string::npos);
    EXPECT_NE(message.find("formula3"), std::string::npos);
    EXPECT_NE(message.find("young"), std::string::npos);
  }
}

TEST(PolicyRegistry, MalformedArgumentsThrow) {
  auto& registry = PolicyRegistry::instance();
  EXPECT_THROW((void)registry.make("fixed"), std::invalid_argument);
  EXPECT_THROW((void)registry.make("fixed:abc"), std::invalid_argument);
  EXPECT_THROW((void)registry.make("fixed:-5"), std::invalid_argument);
  EXPECT_THROW((void)registry.make("formula3:bogus"), std::invalid_argument);
}

TEST(PolicyRegistry, ContainsAndNames) {
  const auto registry = PolicyRegistry::with_builtins();
  EXPECT_TRUE(registry.contains("daly"));
  EXPECT_TRUE(registry.contains("fixed:45"));  // name part is looked up
  EXPECT_FALSE(registry.contains("nope"));
  const auto names = registry.names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_NE(std::find(names.begin(), names.end(), "formula3"), names.end());
}

TEST(PolicyRegistry, CustomRegistrationPlugsIn) {
  auto registry = PolicyRegistry::with_builtins();
  registry.add("always_100", [](const std::string&) -> core::PolicyPtr {
    return std::make_unique<core::FixedIntervalPolicy>(100.0);
  });
  EXPECT_TRUE(registry.contains("always_100"));
  EXPECT_EQ(registry.make("always_100")->name(), "fixed(100s)");
}

trace::Trace tiny_trace() {
  TraceSpec spec;
  spec.seed = 11;
  spec.horizon_s = 1800.0;
  spec.arrival_rate = 0.05;
  spec.sample_job_filter = false;
  return make_trace(spec);
}

TEST(PredictorRegistry, BuiltinsProduceCallablePredictors) {
  const auto trace = tiny_trace();
  ASSERT_FALSE(trace.jobs.empty());
  const auto& task = trace.jobs.front().tasks.front();

  auto& registry = PredictorRegistry::instance();
  for (const char* name : {"oracle", "grouped", "submission"}) {
    const auto predictor = registry.make(name, trace);
    ASSERT_TRUE(predictor) << name;
    const auto stats = predictor(task, task.priority);
    EXPECT_GE(stats.mnof, 0.0) << name;
    EXPECT_GE(stats.mtbf_s, 0.0) << name;
  }
}

TEST(PredictorRegistry, OracleWantsNoObservations) {
  // The streaming runner skips the estimation trace read entirely when the
  // builder declares it needs no observations; pin that the oracle does.
  EXPECT_FALSE(PredictorRegistry::instance()
                   .make_builder("oracle")
                   ->wants_observations());
  EXPECT_TRUE(PredictorRegistry::instance()
                  .make_builder("grouped")
                  ->wants_observations());
}

TEST(PredictorRegistry, LengthLimitArgumentChangesEstimates) {
  const auto trace = tiny_trace();
  auto& registry = PredictorRegistry::instance();
  // A very tight length limit excludes most tasks from estimation; the
  // grouped estimates must move (structure of the paper's Table 7).
  const auto unrestricted = registry.make("grouped", trace);
  const auto restricted = registry.make("grouped:60", trace);
  const auto& task = trace.jobs.front().tasks.front();
  const auto a = unrestricted(task, task.priority);
  const auto b = restricted(task, task.priority);
  EXPECT_TRUE(a.mnof != b.mnof || a.mtbf_s != b.mtbf_s);
}

TEST(PredictorRegistry, UnknownNameAndBadArgumentThrow) {
  auto& registry = PredictorRegistry::instance();
  EXPECT_THROW((void)registry.make_builder("nope"), std::invalid_argument);
  EXPECT_THROW((void)registry.make_builder("grouped:abc"),
               std::invalid_argument);
}

TEST(PredictorRegistry, UnknownNameListsChoicesWithArgGrammar) {
  try {
    (void)PredictorRegistry::with_builtins().make_builder("nope");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("nope"), std::string::npos) << message;
    EXPECT_NE(message.find("oracle"), std::string::npos) << message;
    EXPECT_NE(message.find("grouped[:max_len_s]"), std::string::npos)
        << message;
    EXPECT_NE(message.find("submission[:max_len_s]"), std::string::npos)
        << message;
  }
}

TEST(PolicyRegistry, UnknownNameListsChoicesWithArgGrammar) {
  try {
    (void)PolicyRegistry::with_builtins().make("nope");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("fixed:<interval_s>"), std::string::npos)
        << message;
    EXPECT_NE(message.find("formula3[:exact]"), std::string::npos) << message;
  }
}

// A builder that only overrides observe_task still sees every task: the
// base observe_job forwards the job's tasks in record order.
class CountingBuilder final : public PredictorBuilder {
 public:
  void observe_task(const trace::TaskRecord&) override { ++tasks_; }
  [[nodiscard]] sim::StatsPredictor finalize() override {
    const std::size_t seen = tasks_;
    return [seen](const trace::TaskRecord&, int) {
      return core::FailureStats{static_cast<double>(seen), 300.0};
    };
  }

 private:
  std::size_t tasks_ = 0;
};

TEST(PredictorRegistry, DefaultObserveJobForwardsEveryTask) {
  const auto trace = tiny_trace();
  auto registry = PredictorRegistry::with_builtins();
  registry.add("counting", [](const std::string&) -> PredictorBuilderPtr {
    return std::make_unique<CountingBuilder>();
  });
  const auto predictor = registry.make("counting", trace);
  const auto stats = predictor(trace.jobs.front().tasks.front(), 1);
  EXPECT_DOUBLE_EQ(stats.mnof, static_cast<double>(trace.task_count()));
}

TEST(PredictorRegistry, CustomRegistrationPlugsIn) {
  class ConstantBuilder final : public PredictorBuilder {
   public:
    [[nodiscard]] bool wants_observations() const override { return false; }
    [[nodiscard]] sim::StatsPredictor finalize() override {
      return [](const trace::TaskRecord&, int) {
        return core::FailureStats{2.0, 300.0};
      };
    }
  };
  auto registry = PredictorRegistry::with_builtins();
  registry.add("constant", [](const std::string&) -> PredictorBuilderPtr {
    return std::make_unique<ConstantBuilder>();
  });
  const auto trace = tiny_trace();
  const auto predictor = registry.make("constant", trace);
  const auto stats = predictor(trace.jobs.front().tasks.front(), 1);
  EXPECT_DOUBLE_EQ(stats.mnof, 2.0);
  EXPECT_DOUBLE_EQ(stats.mtbf_s, 300.0);
}

// Registry lookups driven by a spec field report the scenario key AND the
// offending value before the registry's own diagnostic, so a bad key in a
// 40-scenario batch is attributable without a debugger. The exact prefix
// shape ("scenario key '<key>' = '<value>': ") is a CLI contract.
class RunKeyContext : public ::testing::Test {
 protected:
  static api::ScenarioSpec tiny_spec() {
    api::ScenarioSpec spec;
    spec.name = "key_context";
    spec.trace.horizon_s = 60.0;
    return spec;
  }

  static std::string run_error(const api::ScenarioSpec& spec) {
    try {
      (void)api::run_scenario(spec);
    } catch (const std::invalid_argument& e) {
      return e.what();
    }
    ADD_FAILURE() << "expected std::invalid_argument";
    return "";
  }
};

TEST_F(RunKeyContext, PolicyErrorsNameKeyAndValue) {
  auto spec = tiny_spec();
  spec.policy = "no_such_policy";
  const std::string what = run_error(spec);
  EXPECT_EQ(what.find("scenario key 'policy' = 'no_such_policy': "), 0u)
      << what;
}

TEST_F(RunKeyContext, SchedErrorsNameKeyAndValue) {
  auto spec = tiny_spec();
  spec.sched = "backfill:bogus";
  const std::string what = run_error(spec);
  EXPECT_EQ(what.find("scenario key 'sched' = 'backfill:bogus': "), 0u)
      << what;
}

TEST_F(RunKeyContext, PredictorErrorsNameKeyAndValue) {
  auto spec = tiny_spec();
  spec.predictor = "grouped:not_a_number";
  const std::string what = run_error(spec);
  EXPECT_EQ(what.find("scenario key 'predictor' = 'grouped:not_a_number': "),
            0u)
      << what;
}

TEST_F(RunKeyContext, TraceSourceErrorsNameKeyAndValue) {
  auto spec = tiny_spec();
  spec.trace.source = "carrier_pigeon:coop.log";
  const std::string what = run_error(spec);
  EXPECT_EQ(
      what.find("scenario key 'trace.source' = 'carrier_pigeon:coop.log': "),
      0u)
      << what;
}

TEST_F(RunKeyContext, StreamedRunReportsTheSameContext) {
  auto spec = tiny_spec();
  spec.predictor = "no_such_predictor";
  std::string what;
  try {
    (void)api::ScenarioRunner(spec).run_streamed();
  } catch (const std::invalid_argument& e) {
    what = e.what();
  }
  EXPECT_EQ(what.find("scenario key 'predictor' = 'no_such_predictor': "), 0u)
      << what;
}

}  // namespace
}  // namespace cloudcr::api
