// BatchRunner: the determinism property (parallel == serial, bit-identical),
// artifact ordering, trace sharing, error propagation — and ScenarioRunner
// equivalence with a hand-wired Simulation.

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "api/batch.hpp"
#include "api/registry.hpp"
#include "api/runner.hpp"
#include "sim/predictors.hpp"
#include "sim/simulation.hpp"

namespace cloudcr::api {
namespace {

TraceSpec small_trace(std::uint64_t seed) {
  TraceSpec t;
  t.seed = seed;
  t.horizon_s = 2.0 * 3600.0;
  t.arrival_rate = 0.08;
  t.long_service_fraction = 0.0;
  return t;
}

/// A grid diverse enough to exercise every policy family, both placements,
/// the adaptation modes, all estimation sources, and distinct seeds.
std::vector<ScenarioSpec> property_grid() {
  std::vector<ScenarioSpec> specs;

  ScenarioSpec a;
  a.name = "f3_auto";
  a.trace = small_trace(4242);
  a.policy = "formula3";
  specs.push_back(a);

  ScenarioSpec b = a;
  b.name = "young_shared";
  b.policy = "young";
  b.placement = sim::PlacementMode::kForceShared;
  specs.push_back(b);

  ScenarioSpec c = a;
  c.name = "daly_nfs_noise";
  c.policy = "daly";
  c.placement = sim::PlacementMode::kForceShared;
  c.shared_device = storage::DeviceKind::kSharedNfs;
  c.storage_noise = 0.1;
  c.sim_seed = 777;
  specs.push_back(c);

  ScenarioSpec d = a;
  d.name = "fixed_oracle_other_seed";
  d.trace = small_trace(515151);
  d.policy = "fixed:90";
  d.predictor = "oracle";
  specs.push_back(d);

  ScenarioSpec e = a;
  e.name = "none_full_estimation";
  e.policy = "none";
  e.estimation = EstimationSource::kFull;
  specs.push_back(e);

  ScenarioSpec f = a;
  f.name = "static_history";
  f.predictor = "submission";
  f.adaptation = core::AdaptationMode::kStatic;
  f.estimation = EstimationSource::kHistory;
  f.history = small_trace(606060);
  specs.push_back(f);

  return specs;
}

void expect_identical(const RunArtifact& x, const RunArtifact& y) {
  SCOPED_TRACE(x.spec.name);
  EXPECT_EQ(x.spec, y.spec);
  EXPECT_EQ(x.trace_jobs, y.trace_jobs);
  EXPECT_EQ(x.trace_tasks, y.trace_tasks);
  const auto& rx = x.result;
  const auto& ry = y.result;
  EXPECT_EQ(rx.incomplete_jobs, ry.incomplete_jobs);
  EXPECT_EQ(rx.total_checkpoints, ry.total_checkpoints);
  EXPECT_EQ(rx.total_failures, ry.total_failures);
  EXPECT_EQ(rx.events_dispatched, ry.events_dispatched);
  EXPECT_EQ(rx.makespan_s, ry.makespan_s);  // bit-exact, not NEAR
  ASSERT_EQ(rx.outcomes.size(), ry.outcomes.size());
  for (std::size_t i = 0; i < rx.outcomes.size(); ++i) {
    const auto& ox = rx.outcomes[i];
    const auto& oy = ry.outcomes[i];
    EXPECT_EQ(ox.job_id, oy.job_id);
    EXPECT_EQ(ox.wallclock_s, oy.wallclock_s);
    EXPECT_EQ(ox.task_wallclock_s, oy.task_wallclock_s);
    EXPECT_EQ(ox.workload_s, oy.workload_s);
    EXPECT_EQ(ox.checkpoint_s, oy.checkpoint_s);
    EXPECT_EQ(ox.rollback_s, oy.rollback_s);
    EXPECT_EQ(ox.restart_s, oy.restart_s);
    EXPECT_EQ(ox.queue_s, oy.queue_s);
    EXPECT_EQ(ox.checkpoints, oy.checkpoints);
    EXPECT_EQ(ox.failures, oy.failures);
  }
}

TEST(BatchRunnerProperty, ParallelIsBitIdenticalToSerial) {
  const auto specs = property_grid();

  BatchOptions serial;
  serial.threads = 1;
  const auto serial_artifacts = BatchRunner(serial).run(specs);

  BatchOptions parallel;
  parallel.threads = 4;
  const auto parallel_artifacts = BatchRunner(parallel).run(specs);

  ASSERT_EQ(serial_artifacts.size(), specs.size());
  ASSERT_EQ(parallel_artifacts.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    expect_identical(serial_artifacts[i], parallel_artifacts[i]);
  }
}

TEST(BatchRunnerProperty, TraceSharingDoesNotChangeResults) {
  const auto specs = property_grid();
  BatchOptions shared;
  shared.threads = 3;
  shared.share_traces = true;
  BatchOptions unshared;
  unshared.threads = 3;
  unshared.share_traces = false;
  const auto a = BatchRunner(shared).run(specs);
  const auto b = BatchRunner(unshared).run(specs);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    expect_identical(a[i], b[i]);
  }
}

TEST(BatchRunner, ArtifactsArriveInSpecOrder) {
  auto specs = property_grid();
  BatchOptions options;
  options.threads = 4;
  const auto artifacts = BatchRunner(options).run(specs);
  ASSERT_EQ(artifacts.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(artifacts[i].spec.name, specs[i].name);
  }
}

TEST(BatchRunner, EmptyBatchReturnsEmpty) {
  EXPECT_TRUE(BatchRunner().run({}).empty());
}

TEST(BatchRunner, WorkerErrorsPropagateToCaller) {
  auto specs = property_grid();
  specs[2].policy = "not_a_policy";
  BatchOptions options;
  options.threads = 4;
  EXPECT_THROW((void)BatchRunner(options).run(specs), std::invalid_argument);
}

TEST(ScenarioRunner, MatchesHandWiredSimulation) {
  ScenarioSpec spec;
  spec.name = "reference";
  spec.trace = small_trace(4242);
  spec.policy = "formula3";
  spec.predictor = "grouped";
  spec.placement = sim::PlacementMode::kForceShared;

  const auto artifact = run_scenario(spec);

  // The same run, wired by hand against the raw simulation layer.
  const auto trace = make_replay_trace(spec.trace);
  const core::MnofPolicy policy;
  sim::Simulation simulation(to_sim_config(spec), policy,
                             sim::make_grouped_predictor(trace));
  const auto reference = simulation.run(trace);

  ASSERT_EQ(artifact.result.outcomes.size(), reference.outcomes.size());
  EXPECT_EQ(artifact.result.events_dispatched, reference.events_dispatched);
  EXPECT_EQ(artifact.result.total_checkpoints, reference.total_checkpoints);
  for (std::size_t i = 0; i < reference.outcomes.size(); ++i) {
    EXPECT_EQ(artifact.result.outcomes[i].wallclock_s,
              reference.outcomes[i].wallclock_s);
  }
  EXPECT_EQ(artifact.trace_jobs, trace.job_count());
  EXPECT_EQ(artifact.trace_tasks, trace.task_count());
  EXPECT_GE(artifact.wall_time_s, 0.0);
}

TEST(ScenarioRunner, HooksReplaceGeneratedTraceAndPredictor) {
  ScenarioSpec spec;
  spec.name = "hooked";
  spec.policy = "fixed:50";
  spec.placement = sim::PlacementMode::kForceShared;

  // Single 300 s task with one failure at 100 s of active time.
  trace::Trace story;
  trace::JobRecord job;
  job.id = 7;
  trace::TaskRecord task;
  task.job_id = 7;
  task.length_s = 300.0;
  task.memory_mb = 128.0;
  task.priority = 3;
  task.failure_dates = {100.0};
  job.tasks.push_back(task);
  story.jobs.push_back(job);
  story.horizon_s = 1e6;

  RunHooks hooks;
  hooks.replay_trace = &story;
  hooks.predictor_override = [](const trace::TaskRecord&, int) {
    return core::FailureStats{1.0, 150.0};
  };
  const auto artifact = ScenarioRunner(spec).run(hooks);
  ASSERT_EQ(artifact.result.outcomes.size(), 1u);
  EXPECT_EQ(artifact.result.outcomes[0].job_id, 7u);
  EXPECT_EQ(artifact.result.outcomes[0].failures, 1u);
  EXPECT_EQ(artifact.trace_jobs, 1u);
}

TEST(ScenarioRunner, LengthPredictorHookReachesThePlanner) {
  // With fixed 100 s intervals and a planner that believes the task is only
  // 50 s long, no checkpoint is ever scheduled.
  ScenarioSpec spec;
  spec.policy = "fixed:100";
  spec.placement = sim::PlacementMode::kForceShared;

  trace::Trace story;
  trace::JobRecord job;
  job.id = 1;
  trace::TaskRecord task;
  task.job_id = 1;
  task.length_s = 400.0;
  task.memory_mb = 64.0;
  task.priority = 2;
  job.tasks.push_back(task);
  story.jobs.push_back(job);
  story.horizon_s = 1e6;

  RunHooks hooks;
  hooks.replay_trace = &story;
  hooks.predictor_override = [](const trace::TaskRecord&, int) {
    return core::FailureStats{1.0, 100.0};
  };
  const auto baseline = ScenarioRunner(spec).run(hooks);
  ASSERT_EQ(baseline.result.outcomes.size(), 1u);
  EXPECT_GT(baseline.result.outcomes[0].checkpoints, 0u);

  hooks.length_predictor = [](const trace::TaskRecord&) { return 50.0; };
  const auto clipped = ScenarioRunner(spec).run(hooks);
  ASSERT_EQ(clipped.result.outcomes.size(), 1u);
  EXPECT_EQ(clipped.result.outcomes[0].checkpoints, 0u);
}

}  // namespace
}  // namespace cloudcr::api
