// ScenarioSpec: serialization round trip, parse diagnostics, and the
// lowering into trace-generator / simulator configs.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "api/scenario.hpp"

namespace cloudcr::api {
namespace {

ScenarioSpec exotic_spec() {
  ScenarioSpec spec;
  spec.name = "fig14_dynamic";
  spec.trace.seed = 20130917;
  spec.trace.horizon_s = 7.0 * 86400.0;
  spec.trace.arrival_rate = 0.116;
  spec.trace.max_jobs = 12345;
  spec.trace.sample_job_filter = false;
  spec.trace.priority_change_midway = true;
  spec.trace.long_service_fraction = 0.07;
  spec.trace.replay_max_task_length_s = 21600.0;
  spec.policy = "fixed:45.5";
  spec.predictor = "grouped:1000";
  spec.estimation = EstimationSource::kHistory;
  spec.history.seed = 99;
  spec.history.horizon_s = 86400.0;
  spec.history.replay_max_task_length_s = 4000.0;
  spec.placement = sim::PlacementMode::kForceLocal;
  spec.adaptation = core::AdaptationMode::kStatic;
  spec.shared_device = storage::DeviceKind::kSharedNfs;
  spec.storage_noise = 0.1;
  spec.sim_seed = 0xabcdef;
  spec.detection_delay_s = 2.5;
  spec.shards = 7;
  spec.cluster.hosts = 16;
  spec.cluster.vms_per_host = 4;
  spec.cluster.vm_memory_mb = 2048.0;
  return spec;
}

TEST(ScenarioSerialization, RoundTripsDefaults) {
  const ScenarioSpec spec;
  EXPECT_EQ(parse_scenario(serialize(spec)), spec);
}

TEST(ScenarioSerialization, RoundTripsEveryField) {
  const auto spec = exotic_spec();
  const auto parsed = parse_scenario(serialize(spec));
  EXPECT_EQ(parsed, spec);
  // Spot-check a few fields directly so a broken operator== cannot give a
  // vacuous pass.
  EXPECT_EQ(parsed.name, "fig14_dynamic");
  EXPECT_EQ(parsed.policy, "fixed:45.5");
  EXPECT_EQ(parsed.estimation, EstimationSource::kHistory);
  EXPECT_EQ(parsed.history.seed, 99u);
  EXPECT_DOUBLE_EQ(parsed.history.replay_max_task_length_s, 4000.0);
  EXPECT_EQ(parsed.placement, sim::PlacementMode::kForceLocal);
  EXPECT_EQ(parsed.shards, 7u);
  EXPECT_EQ(parsed.cluster.hosts, 16u);
}

TEST(ScenarioSerialization, ShardsRoundTripAndBounds) {
  ScenarioSpec spec;
  spec.shards = 4096;  // upper bound is accepted
  EXPECT_EQ(parse_scenario(serialize(spec)), spec);
  // Unlisted key keeps the serial default — pre-sharding artifacts parse.
  EXPECT_EQ(parse_scenario("name=old_artifact\n").shards, 1u);
  EXPECT_THROW((void)parse_scenario("shards=0"), std::invalid_argument);
  EXPECT_THROW((void)parse_scenario("shards=4097"), std::invalid_argument);
  EXPECT_THROW((void)parse_scenario("shards=-2"), std::invalid_argument);
  EXPECT_THROW((void)parse_scenario("shards=two"), std::invalid_argument);
}

TEST(ScenarioSerialization, RoundTripsTraceSource) {
  ScenarioSpec spec;
  spec.trace.source = "google:/logs/task_events.csv?memory_scale_mb=2048";
  spec.history.source = "csv:/data/history.csv?time_unit=ms";
  const auto parsed = parse_scenario(serialize(spec));
  EXPECT_EQ(parsed, spec);
  EXPECT_EQ(parsed.trace.source, spec.trace.source);
  EXPECT_EQ(parsed.history.source, spec.history.source);
  // Paths with escape-worthy characters survive too.
  ScenarioSpec awkward;
  awkward.trace.source = "csv:/data/with\\backslash\nand newline";
  EXPECT_EQ(parse_scenario(serialize(awkward)).trace.source,
            awkward.trace.source);
}

TEST(ScenarioSerialization, RoundTripsInfinityAndAwkwardDoubles) {
  ScenarioSpec spec;
  spec.trace.replay_max_task_length_s =
      std::numeric_limits<double>::infinity();
  spec.trace.arrival_rate = 0.1 + 0.2;  // 0.30000000000000004
  spec.detection_delay_s = 1e-17;
  const auto parsed = parse_scenario(serialize(spec));
  EXPECT_TRUE(std::isinf(parsed.trace.replay_max_task_length_s));
  EXPECT_EQ(parsed.trace.arrival_rate, spec.trace.arrival_rate);
  EXPECT_EQ(parsed.detection_delay_s, spec.detection_delay_s);
}

TEST(ScenarioSerialization, RoundTripsAwkwardStrings) {
  ScenarioSpec spec;
  spec.name = "line one\nline two\\with backslash";
  spec.policy = "fixed:45";
  const auto parsed = parse_scenario(serialize(spec));
  EXPECT_EQ(parsed, spec);
  EXPECT_EQ(parsed.name, spec.name);
  // A crafted name cannot smuggle a key=value line into the document.
  ScenarioSpec inject;
  inject.name = "x\ntrace.seed=123";
  EXPECT_EQ(parse_scenario(serialize(inject)).trace.seed, TraceSpec{}.seed);
}

TEST(ScenarioSerialization, IgnoresCommentsAndBlankLines) {
  const auto spec = parse_scenario("# a comment\n\nname=x\npolicy=young\n");
  EXPECT_EQ(spec.name, "x");
  EXPECT_EQ(spec.policy, "young");
  // Unlisted fields keep their defaults.
  EXPECT_EQ(spec.predictor, "grouped");
}

TEST(ScenarioSerialization, RejectsMalformedInput) {
  EXPECT_THROW((void)parse_scenario("no_equals_sign"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_scenario("unknown_key=1"), std::invalid_argument);
  EXPECT_THROW((void)parse_scenario("trace.unknown=1"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_scenario("trace.seed=abc"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_scenario("trace.seed=-1"), std::invalid_argument);
  EXPECT_THROW((void)parse_scenario("storage_noise=lots"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_scenario("placement=sideways"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_scenario("estimation=guesswork"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_scenario("shared_device=floppy"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_scenario("trace.sample_job_filter=maybe"),
               std::invalid_argument);
}

TEST(EnumTokens, RoundTrip) {
  for (const auto mode :
       {sim::PlacementMode::kAutoSelect, sim::PlacementMode::kForceLocal,
        sim::PlacementMode::kForceShared}) {
    EXPECT_EQ(parse_placement(placement_token(mode)), mode);
  }
  for (const auto mode :
       {core::AdaptationMode::kAdaptive, core::AdaptationMode::kStatic}) {
    EXPECT_EQ(parse_adaptation(adaptation_token(mode)), mode);
  }
  for (const auto kind :
       {storage::DeviceKind::kLocalRamdisk, storage::DeviceKind::kSharedNfs,
        storage::DeviceKind::kDmNfs}) {
    EXPECT_EQ(parse_device(device_token(kind)), kind);
  }
  for (const auto source :
       {EstimationSource::kReplay, EstimationSource::kFull,
        EstimationSource::kHistory}) {
    EXPECT_EQ(parse_estimation(estimation_token(source)), source);
  }
}

TEST(ScenarioLowering, GeneratorConfigCarriesTraceFields) {
  const auto spec = exotic_spec();
  const auto cfg = to_generator_config(spec.trace);
  EXPECT_EQ(cfg.seed, spec.trace.seed);
  EXPECT_DOUBLE_EQ(cfg.horizon_s, spec.trace.horizon_s);
  EXPECT_DOUBLE_EQ(cfg.arrival_rate, spec.trace.arrival_rate);
  EXPECT_EQ(cfg.max_jobs, spec.trace.max_jobs);
  EXPECT_FALSE(cfg.sample_job_filter);
  EXPECT_TRUE(cfg.priority_change_midway);
  EXPECT_DOUBLE_EQ(cfg.workload.long_service_fraction, 0.07);
}

TEST(ScenarioLowering, NegativeServiceFractionKeepsModelDefault) {
  TraceSpec trace;
  trace.long_service_fraction = -1.0;
  const auto cfg = to_generator_config(trace);
  EXPECT_DOUBLE_EQ(cfg.workload.long_service_fraction,
                   trace::WorkloadConfig{}.long_service_fraction);
}

TEST(ScenarioLowering, SimConfigCarriesRunFields) {
  const auto spec = exotic_spec();
  const auto cfg = to_sim_config(spec);
  EXPECT_EQ(cfg.placement, spec.placement);
  EXPECT_EQ(cfg.adaptation, spec.adaptation);
  EXPECT_EQ(cfg.shared_kind, spec.shared_device);
  EXPECT_DOUBLE_EQ(cfg.storage_noise, spec.storage_noise);
  EXPECT_EQ(cfg.seed, spec.sim_seed);
  EXPECT_DOUBLE_EQ(cfg.detection_delay_s, spec.detection_delay_s);
  EXPECT_EQ(cfg.cluster.hosts, spec.cluster.hosts);
  EXPECT_EQ(cfg.cluster.vms_per_host, spec.cluster.vms_per_host);
}

}  // namespace
}  // namespace cloudcr::api
