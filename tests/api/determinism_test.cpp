// Property: the JSON artifact of a ScenarioSpec is a pure function of the
// spec. Serial execution, a threaded batch, and a pooled-workspace rerun
// must produce byte-identical documents — across seeds, policies, and
// placements. This is what makes the paper's paired comparisons (and the
// CI perf baseline) trustworthy: no run can depend on thread schedule,
// buffer reuse, or which worker happened to replay it.

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/batch.hpp"
#include "api/runner.hpp"
#include "metrics/export.hpp"
#include "obs/stats.hpp"

namespace cloudcr {
namespace {

std::vector<api::ScenarioSpec> grid(std::uint64_t seed) {
  std::vector<api::ScenarioSpec> specs;
  const struct {
    const char* policy;
    sim::PlacementMode placement;
  } points[] = {
      {"formula3", sim::PlacementMode::kAutoSelect},
      {"young", sim::PlacementMode::kForceShared},
      {"daly", sim::PlacementMode::kForceLocal},
      {"none", sim::PlacementMode::kAutoSelect},
  };
  for (const auto& p : points) {
    api::ScenarioSpec spec;
    spec.name = std::string("det_") + p.policy;
    spec.trace.seed = seed;
    spec.trace.horizon_s = 1800.0;
    spec.trace.arrival_rate = 0.08;
    spec.policy = p.policy;
    spec.placement = p.placement;
    spec.storage_noise = 0.05;  // exercise the RNG-reset path too
    specs.push_back(spec);
  }
  // Scheduling-stage points: a small cluster creates admission pressure so
  // backfill and preemption actually hold/evict jobs (on an uncontended
  // cluster every scheduler degenerates into fcfs and the property would
  // pin nothing).
  for (const char* sched :
       {"backfill:easy", "backfill:conservative", "preempt:requeue"}) {
    api::ScenarioSpec spec;
    spec.name = std::string("det_sched_") + sched;
    spec.trace.seed = seed;
    spec.trace.horizon_s = 1800.0;
    spec.trace.arrival_rate = 0.08;
    spec.policy = "formula3";
    spec.sched = sched;
    spec.cluster.hosts = 4;
    spec.cluster.vms_per_host = 2;
    specs.push_back(spec);
  }
  return specs;
}

/// Deterministic render of a batch: every field the engine computes except
/// host wall time.
std::string render(const std::vector<api::RunArtifact>& artifacts) {
  std::ostringstream os;
  for (const auto& a : artifacts) {
    os << a.spec.name << " jobs=" << a.trace_jobs << " tasks=" << a.trace_tasks
       << " events=" << a.result.events_dispatched
       << " makespan=" << metrics::json_double(a.result.makespan_s)
       << " incomplete=" << a.result.incomplete_jobs << "\n";
    for (const auto& outcome : a.result.outcomes) {
      metrics::write_outcome_json(os, outcome);
      os << "\n";
    }
  }
  return os.str();
}

class ExecutionModeDeterminism
    : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ExecutionModeDeterminism, SerialThreadedAndPooledAgreeByteForByte) {
  const auto specs = grid(GetParam());

  api::BatchOptions serial_opts;
  serial_opts.threads = 1;
  const std::string serial =
      render(api::BatchRunner(serial_opts).run(specs));

  api::BatchOptions threaded_opts;
  threaded_opts.threads = 4;
  const std::string threaded =
      render(api::BatchRunner(threaded_opts).run(specs));

  // Pooled rerun: one workspace replays every spec twice in sequence; only
  // the second pass is kept, so any state leaking across runs would show.
  sim::ReplayWorkspace workspace;
  api::RunHooks hooks;
  hooks.workspace = &workspace;
  std::vector<api::RunArtifact> pooled_artifacts;
  for (const auto& spec : specs) {
    (void)api::run_scenario(spec, hooks);
    pooled_artifacts.push_back(api::run_scenario(spec, hooks));
  }
  const std::string pooled = render(pooled_artifacts);

  EXPECT_EQ(serial, threaded)
      << "threaded batch diverged from serial execution";
  EXPECT_EQ(serial, pooled)
      << "pooled-workspace rerun diverged from serial execution";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutionModeDeterminism,
                         ::testing::Values(11u, 12u, 13u));

// Observability grid point: instrumentation must be invisible to results,
// and the merged counter registry must itself be execution-mode
// deterministic — per-run tallies flush order-independent sums/maxes, so
// how BatchRunner spread the specs across workers cannot show. Timers are
// host time and stay out of the compared rendering.
TEST(ObservabilityDeterminism, ProbesAndStatsNeverChangeResults) {
  auto specs = grid(11u);
  const api::BatchOptions opts;
  const std::string plain = render(api::BatchRunner(opts).run(specs));
  for (auto& spec : specs) {
    spec.obs.stats = true;
    spec.obs.probe_interval_s = 300.0;
  }
  auto artifacts = api::BatchRunner(opts).run(specs);
  for (auto& a : artifacts) {
    // render() ignores probes; drop them so the comparison pins that every
    // *other* field is byte-identical under instrumentation.
    a.result.probes.clear();
    a.spec.obs = obs::ObsSpec{};
  }
  EXPECT_EQ(plain, render(artifacts))
      << "collecting stats/probes changed simulation results";
}

TEST(ObservabilityDeterminism, MergedRegistryIsThreadCountIndependent) {
  auto specs = grid(12u);
  for (auto& spec : specs) spec.obs.stats = true;

  const auto registry_text = [&specs](std::size_t threads) {
    obs::reset_stats();
    api::BatchOptions opts;
    opts.threads = threads;
    (void)api::BatchRunner(opts).run(specs);
    std::ostringstream os;
    obs::write_stats_text(os, /*include_timers=*/false);
    return os.str();
  };

  const std::string serial = registry_text(1);
  const std::string threaded = registry_text(4);
  obs::reset_stats();
  EXPECT_EQ(serial, threaded)
      << "merged counter registry depends on the worker partition";
}

}  // namespace
}  // namespace cloudcr
