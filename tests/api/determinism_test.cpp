// Property: the JSON artifact of a ScenarioSpec is a pure function of the
// spec. Serial execution, a threaded batch, and a pooled-workspace rerun
// must produce byte-identical documents — across seeds, policies, and
// placements. This is what makes the paper's paired comparisons (and the
// CI perf baseline) trustworthy: no run can depend on thread schedule,
// buffer reuse, or which worker happened to replay it.

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/batch.hpp"
#include "api/runner.hpp"
#include "metrics/export.hpp"

namespace cloudcr {
namespace {

std::vector<api::ScenarioSpec> grid(std::uint64_t seed) {
  std::vector<api::ScenarioSpec> specs;
  const struct {
    const char* policy;
    sim::PlacementMode placement;
  } points[] = {
      {"formula3", sim::PlacementMode::kAutoSelect},
      {"young", sim::PlacementMode::kForceShared},
      {"daly", sim::PlacementMode::kForceLocal},
      {"none", sim::PlacementMode::kAutoSelect},
  };
  for (const auto& p : points) {
    api::ScenarioSpec spec;
    spec.name = std::string("det_") + p.policy;
    spec.trace.seed = seed;
    spec.trace.horizon_s = 1800.0;
    spec.trace.arrival_rate = 0.08;
    spec.policy = p.policy;
    spec.placement = p.placement;
    spec.storage_noise = 0.05;  // exercise the RNG-reset path too
    specs.push_back(spec);
  }
  // Scheduling-stage points: a small cluster creates admission pressure so
  // backfill and preemption actually hold/evict jobs (on an uncontended
  // cluster every scheduler degenerates into fcfs and the property would
  // pin nothing).
  for (const char* sched :
       {"backfill:easy", "backfill:conservative", "preempt:requeue"}) {
    api::ScenarioSpec spec;
    spec.name = std::string("det_sched_") + sched;
    spec.trace.seed = seed;
    spec.trace.horizon_s = 1800.0;
    spec.trace.arrival_rate = 0.08;
    spec.policy = "formula3";
    spec.sched = sched;
    spec.cluster.hosts = 4;
    spec.cluster.vms_per_host = 2;
    specs.push_back(spec);
  }
  return specs;
}

/// Deterministic render of a batch: every field the engine computes except
/// host wall time.
std::string render(const std::vector<api::RunArtifact>& artifacts) {
  std::ostringstream os;
  for (const auto& a : artifacts) {
    os << a.spec.name << " jobs=" << a.trace_jobs << " tasks=" << a.trace_tasks
       << " events=" << a.result.events_dispatched
       << " makespan=" << metrics::json_double(a.result.makespan_s)
       << " incomplete=" << a.result.incomplete_jobs << "\n";
    for (const auto& outcome : a.result.outcomes) {
      metrics::write_outcome_json(os, outcome);
      os << "\n";
    }
  }
  return os.str();
}

class ExecutionModeDeterminism
    : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ExecutionModeDeterminism, SerialThreadedAndPooledAgreeByteForByte) {
  const auto specs = grid(GetParam());

  api::BatchOptions serial_opts;
  serial_opts.threads = 1;
  const std::string serial =
      render(api::BatchRunner(serial_opts).run(specs));

  api::BatchOptions threaded_opts;
  threaded_opts.threads = 4;
  const std::string threaded =
      render(api::BatchRunner(threaded_opts).run(specs));

  // Pooled rerun: one workspace replays every spec twice in sequence; only
  // the second pass is kept, so any state leaking across runs would show.
  sim::ReplayWorkspace workspace;
  api::RunHooks hooks;
  hooks.workspace = &workspace;
  std::vector<api::RunArtifact> pooled_artifacts;
  for (const auto& spec : specs) {
    (void)api::run_scenario(spec, hooks);
    pooled_artifacts.push_back(api::run_scenario(spec, hooks));
  }
  const std::string pooled = render(pooled_artifacts);

  EXPECT_EQ(serial, threaded)
      << "threaded batch diverged from serial execution";
  EXPECT_EQ(serial, pooled)
      << "pooled-workspace rerun diverged from serial execution";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutionModeDeterminism,
                         ::testing::Values(11u, 12u, 13u));

}  // namespace
}  // namespace cloudcr
