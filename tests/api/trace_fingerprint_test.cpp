// The canonical workload fingerprint that both cache layers key on:
// BatchRunner's shared trace cursors and SimService's artifact LRU. The
// properties pinned here are exactly the sharing/invalidating conditions
// those caches rely on:
//
//   - spelling never splits a cache: key-order-shuffled spec text and
//     generator-only fields on a file-backed source map to one
//     fingerprint / one cache key (the regression for the old
//     spec-substring trace key, which split cursors on any textual
//     difference);
//   - content always invalidates: an edited trace file (size or mtime),
//     a different synthetic seed, or a different replay restriction maps
//     to a fresh fingerprint.

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/batch.hpp"
#include "api/fingerprint.hpp"
#include "api/scenario.hpp"
#include "trace/generator.hpp"
#include "trace/trace_io.hpp"

namespace cloudcr::api {
namespace {

std::string write_fixture(const std::string& name, std::uint64_t seed) {
  const std::string path = testing::TempDir() + name;
  trace::GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.horizon_s = 900.0;
  cfg.arrival_rate = 0.05;
  cfg.sample_job_filter = false;
  trace::write_csv_file(path, trace::TraceGenerator(cfg).generate());
  return path;
}

TEST(TraceFingerprintTest, GeneratorFieldsAreNormalizedForFileSources) {
  const std::string path = write_fixture("fp_norm.csv", 7);

  TraceSpec a;
  a.source = "csv:" + path;
  TraceSpec b = a;
  // Generator-only knobs: a file-backed source ignores them, so they must
  // not split the cursor cache (the historical BatchRunner bug).
  b.seed = a.seed + 99;
  b.horizon_s = a.horizon_s * 2.0;
  b.arrival_rate = 0.5;
  b.long_service_fraction = 0.25;

  EXPECT_EQ(trace_fingerprint(a, true), trace_fingerprint(b, true));
  EXPECT_EQ(trace_fingerprint(a, false), trace_fingerprint(b, false));
}

TEST(TraceFingerprintTest, PostIngestionShapingStillParticipates) {
  const std::string path = write_fixture("fp_shaping.csv", 8);

  TraceSpec a;
  a.source = "csv:" + path;
  TraceSpec b = a;
  b.sample_job_filter = !a.sample_job_filter;
  EXPECT_NE(trace_fingerprint(a, true), trace_fingerprint(b, true));

  // The replay length restriction participates only in the restricted
  // view; the unrestricted (estimation) view shares one trace.
  TraceSpec c = a;
  c.replay_max_task_length_s = 3600.0;
  EXPECT_NE(trace_fingerprint(a, true), trace_fingerprint(c, true));
  EXPECT_EQ(trace_fingerprint(a, false), trace_fingerprint(c, false));
}

TEST(TraceFingerprintTest, SyntheticTupleParticipates) {
  TraceSpec a;
  a.seed = 11;
  TraceSpec b = a;
  b.seed = 12;
  EXPECT_NE(trace_fingerprint(a, true), trace_fingerprint(b, true));

  TraceSpec c = a;
  c.arrival_rate = a.arrival_rate * 2.0;
  EXPECT_NE(trace_fingerprint(a, true), trace_fingerprint(c, true));
}

TEST(TraceFingerprintTest, EditedFileChangesTheFingerprint) {
  const std::string path = write_fixture("fp_edit.csv", 9);
  TraceSpec spec;
  spec.source = "csv:" + path;
  const std::string before = trace_fingerprint(spec, true);

  // Append a byte: the size component changes even if mtime granularity
  // would miss a same-second rewrite.
  {
    std::ofstream os(path, std::ios::app);
    os << "\n";
  }
  EXPECT_NE(trace_fingerprint(spec, true), before);
}

TEST(TraceFingerprintTest, MissingFileFingerprintsAsAbsent) {
  TraceSpec spec;
  spec.source = "csv:" + testing::TempDir() + "fp_does_not_exist.csv";
  // Never throws at fingerprint time (load() reports the error later);
  // distinct missing paths still get distinct fingerprints.
  const std::string a = trace_fingerprint(spec, true);
  spec.source += ".other";
  EXPECT_NE(trace_fingerprint(spec, true), a);
}

TEST(ScenarioCacheKeyTest, KeyOrderInvariantAndSeedSensitive) {
  ScenarioSpec spec;
  spec.name = "fp_key";
  spec.policy = "daly";
  spec.trace.seed = 41;
  spec.trace.horizon_s = 1200.0;

  // Reverse the canonical line order: same spec, same key.
  const std::string canon = serialize(spec);
  std::vector<std::string> lines;
  std::istringstream is(canon);
  for (std::string line; std::getline(is, line);) lines.push_back(line);
  std::string reversed;
  for (auto it = lines.rbegin(); it != lines.rend(); ++it) {
    reversed += *it + "\n";
  }
  EXPECT_EQ(scenario_cache_key(parse_scenario(reversed)),
            scenario_cache_key(spec));

  ScenarioSpec other = spec;
  other.trace.seed = 42;
  EXPECT_NE(scenario_cache_key(other), scenario_cache_key(spec));
}

// Two specs pointing at the same file but spelled with different
// generator-only fields run through one BatchRunner and must share one
// cursor: with the fingerprint key the cursor cache reads the file once
// per pass, which the per-artifact read accounting exposes.
TEST(BatchFingerprintTest, SameWorkloadSpecsShareOneCursor) {
  const std::string path = write_fixture("fp_batch.csv", 10);

  std::vector<ScenarioSpec> specs(2);
  specs[0].name = "fp_batch_a";
  specs[0].policy = "formula3";
  specs[0].trace.source = "csv:" + path;
  specs[1] = specs[0];
  specs[1].name = "fp_batch_b";
  specs[1].trace.seed = 999;        // generator-only: same workload
  specs[1].trace.horizon_s = 42.0;  // generator-only: same workload

  BatchOptions options;
  options.threads = 1;
  options.stream_traces = true;
  BatchRunner runner(options);
  const std::vector<RunArtifact> artifacts = runner.run(specs);

  ASSERT_EQ(artifacts.size(), 2u);
  // Identical workload -> identical replays.
  EXPECT_EQ(artifacts[0].trace_jobs, artifacts[1].trace_jobs);
  EXPECT_EQ(artifacts[0].trace_tasks, artifacts[1].trace_tasks);
  EXPECT_EQ(artifacts[0].result.events_dispatched,
            artifacts[1].result.events_dispatched);
  EXPECT_EQ(artifacts[0].result.makespan_s, artifacts[1].result.makespan_s);
}

}  // namespace
}  // namespace cloudcr::api
