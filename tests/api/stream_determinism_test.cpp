// Property: the streaming replay is bit-identical to the materialized one.
// ScenarioRunner::run_streamed (lazy admission, per-chunk post-processing,
// builder-observed estimation, row recycling) must produce byte-identical
// artifacts to ScenarioRunner::run_materialized across every built-in
// source kind, seeds, policies, estimation modes, and — since the
// PredictorBuilder observation contract — custom registered predictors,
// serial and through a threaded BatchRunner with stream_traces on. This is
// what makes the memory-bounded month-scale path trustworthy: streaming
// can change the footprint, never the results. The suite also pins the
// SharedTraceCursor pass accounting (single-pass sources serve estimation
// and replay from one read) and the observation-order property (streamed
// observe_task order == the materialized trace's job/task order).

#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "api/batch.hpp"
#include "api/registry.hpp"
#include "api/runner.hpp"
#include "api/stream.hpp"
#include "core/estimator.hpp"
#include "ingest/google_source.hpp"
#include "metrics/export.hpp"
#include "sim/predictors.hpp"
#include "trace/generator.hpp"
#include "trace/trace_io.hpp"

namespace cloudcr::api {
namespace {

/// Deterministic render of artifacts: every field the engine computes
/// except host wall time.
std::string render(const std::vector<RunArtifact>& artifacts) {
  std::ostringstream os;
  for (const auto& a : artifacts) {
    os << a.spec.name << " jobs=" << a.trace_jobs << " tasks=" << a.trace_tasks
       << " events=" << a.result.events_dispatched
       << " makespan=" << metrics::json_double(a.result.makespan_s)
       << " incomplete=" << a.result.incomplete_jobs
       << " checkpoints=" << a.result.total_checkpoints
       << " failures=" << a.result.total_failures
       << " unschedulable=" << a.result.total_unschedulable << "\n";
    for (const auto& outcome : a.result.outcomes) {
      metrics::write_outcome_json(os, outcome);
      os << "\n";
    }
  }
  return os.str();
}

std::string render_one(const RunArtifact& artifact) {
  return render({artifact});
}

/// A predictor registered through the public observation API only — the
/// "any predictor at any scale" acceptance case. Equivalent in spirit to
/// the builtin grouped predictor but built entirely out of user-facing
/// pieces, so the grid proves a custom registration streams bit-identically
/// with no access to registry internals.
void register_custom_grouped() {
  class CustomGroupedBuilder final : public PredictorBuilder {
   public:
    explicit CustomGroupedBuilder(double limit) : estimator_(limit) {}
    void observe_task(const trace::TaskRecord& task) override {
      sim::observe_task(estimator_, task);
    }
    [[nodiscard]] sim::StatsPredictor finalize() override {
      return sim::make_grouped_predictor(std::move(estimator_));
    }

   private:
    core::GroupedEstimator estimator_;
  };
  PredictorRegistry::instance().add(
      "custom_grouped",
      [](const std::string& arg) -> PredictorBuilderPtr {
        const double limit =
            arg.empty() ? trace::kNoLengthLimit : std::stod(arg);
        return std::make_unique<CustomGroupedBuilder>(limit);
      },
      "custom_grouped[:max_len_s]");
}

trace::Trace fixture_trace(std::uint64_t seed) {
  trace::GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.horizon_s = 2.0 * 3600.0;
  cfg.arrival_rate = 0.05;
  cfg.sample_job_filter = false;
  cfg.workload.long_service_fraction = 0.0;
  return trace::TraceGenerator(cfg).generate();
}

/// One scenario per built-in source kind (fixtures written per seed), with
/// varied policies and estimation modes.
std::vector<ScenarioSpec> grid(std::uint64_t seed) {
  register_custom_grouped();
  const std::string tag = std::to_string(seed);
  const std::string google_path =
      "stream_det_google_" + tag + "_task_events.csv";
  {
    std::ofstream os(google_path);
    ingest::write_task_events(os, fixture_trace(seed));
  }
  const std::string csv_path = "stream_det_native_" + tag + ".csv";
  trace::write_csv_file(csv_path, fixture_trace(seed + 1000));

  std::vector<ScenarioSpec> specs;
  {
    ScenarioSpec spec;
    spec.name = "stream_det_synthetic_" + tag;
    spec.trace.seed = seed;
    spec.trace.horizon_s = 2.0 * 3600.0;
    spec.trace.arrival_rate = 0.08;
    spec.policy = "formula3";
    spec.estimation = EstimationSource::kFull;
    specs.push_back(spec);
  }
  {
    // Exercise the replay length restriction across chunk boundaries.
    ScenarioSpec spec;
    spec.name = "stream_det_synthetic_rl_" + tag;
    spec.trace.seed = seed;
    spec.trace.horizon_s = 2.0 * 3600.0;
    spec.trace.arrival_rate = 0.08;
    spec.trace.long_service_fraction = 0.08;
    spec.trace.replay_max_task_length_s = 6.0 * 3600.0;
    spec.policy = "young";
    specs.push_back(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "stream_det_google_" + tag;
    spec.trace.source = "google:" + google_path;
    spec.trace.sample_job_filter = true;
    spec.policy = "daly";
    spec.predictor = "submission";
    specs.push_back(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "stream_det_csv_" + tag;
    spec.trace.source = "csv:" + csv_path;
    spec.trace.sample_job_filter = true;
    spec.trace.max_jobs = 40;  // the cap crosses chunk boundaries too
    spec.policy = "none";
    spec.predictor = "oracle";
    specs.push_back(spec);
  }
  // A custom registered predictor on every source kind: the observation
  // contract must stream bit-identically wherever the built-ins do.
  {
    ScenarioSpec spec;
    spec.name = "stream_det_custom_syn_" + tag;
    spec.trace.seed = seed;
    spec.trace.horizon_s = 2.0 * 3600.0;
    spec.trace.arrival_rate = 0.08;
    spec.policy = "formula3";
    spec.predictor = "custom_grouped";
    spec.estimation = EstimationSource::kFull;
    specs.push_back(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "stream_det_custom_google_" + tag;
    spec.trace.source = "google:" + google_path;
    spec.trace.sample_job_filter = true;
    spec.policy = "daly";
    spec.predictor = "custom_grouped";
    specs.push_back(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "stream_det_custom_csv_" + tag;
    spec.trace.source = "csv:" + csv_path;
    spec.trace.sample_job_filter = true;
    spec.trace.max_jobs = 40;
    spec.policy = "young";
    spec.predictor = "custom_grouped:7200";
    specs.push_back(spec);
  }
  // Scheduling-stage points: each scheduler on both a generated and an
  // ingested source, under a small cluster so jobs really queue. Streaming
  // admits jobs lazily — the held-job queue and reservation wakeups must
  // not care when the arrival events were materialized.
  for (const char* sched :
       {"backfill:easy", "backfill:conservative", "preempt:requeue"}) {
    {
      ScenarioSpec spec;
      spec.name = std::string("stream_det_sched_syn_") + sched + "_" + tag;
      spec.trace.seed = seed;
      spec.trace.horizon_s = 2.0 * 3600.0;
      spec.trace.arrival_rate = 0.08;
      spec.policy = "formula3";
      spec.sched = sched;
      spec.cluster.hosts = 4;
      spec.cluster.vms_per_host = 2;
      specs.push_back(spec);
    }
    {
      ScenarioSpec spec;
      spec.name = std::string("stream_det_sched_csv_") + sched + "_" + tag;
      spec.trace.source = "csv:" + csv_path;
      spec.trace.sample_job_filter = true;
      spec.policy = "young";
      spec.sched = sched;
      spec.cluster.hosts = 4;
      spec.cluster.vms_per_host = 2;
      specs.push_back(spec);
    }
  }
  return specs;
}

class StreamedEqualsMaterialized
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StreamedEqualsMaterialized, AcrossSourcesPoliciesAndBatchSizes) {
  const auto specs = grid(GetParam());
  for (const auto& spec : specs) {
    const ScenarioRunner runner(spec);
    const std::string materialized = render_one(runner.run_materialized());
    // Chunk size must be invisible: per-job pulls, a mid-size batch, and
    // one chunk far larger than the trace.
    for (const std::size_t batch : {std::size_t{1}, std::size_t{7},
                                    std::size_t{1} << 20}) {
      const std::string streamed =
          render_one(runner.run_streamed({}, batch));
      EXPECT_EQ(materialized, streamed)
          << spec.name << " diverged at batch_jobs=" << batch;
    }
    // The unified entry point picks one of the two proven-equal shapes.
    EXPECT_EQ(materialized, render_one(runner.run())) << spec.name;
  }
}

TEST_P(StreamedEqualsMaterialized, ThreadedBatchWithStreamCursors) {
  const auto specs = grid(GetParam());

  BatchOptions cached;
  cached.threads = 1;
  const std::string materialized = render(BatchRunner(cached).run(specs));

  BatchOptions streaming;
  streaming.threads = 4;
  streaming.stream_traces = true;
  streaming.stream_batch_jobs = 16;
  const std::string streamed = render(BatchRunner(streaming).run(specs));

  EXPECT_EQ(materialized, streamed)
      << "threaded stream-cursor batch diverged from the cached serial run";
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamedEqualsMaterialized,
                         ::testing::Values(11u, 12u, 13u));

// The observation-order property: a builder fed by the streaming runner
// sees exactly the job/task sequence of the materialized estimation view,
// in its order — the invariant that lets any order-sensitive custom
// estimator stream safely.
TEST(PredictorObservationOrder, StreamedFeedMatchesMaterializedTraceOrder) {
  using Seen = std::vector<std::pair<std::uint64_t, double>>;
  const auto recorded = std::make_shared<Seen>();

  class OrderProbeBuilder final : public PredictorBuilder {
   public:
    explicit OrderProbeBuilder(std::shared_ptr<Seen> out)
        : out_(std::move(out)) {}
    void observe_task(const trace::TaskRecord& task) override {
      out_->emplace_back(task.job_id, task.length_s);
    }
    [[nodiscard]] sim::StatsPredictor finalize() override {
      return [](const trace::TaskRecord&, int) {
        return core::FailureStats{1.0, 100.0};
      };
    }

   private:
    std::shared_ptr<Seen> out_;
  };
  PredictorRegistry::instance().add(
      "order_probe", [recorded](const std::string&) -> PredictorBuilderPtr {
        return std::make_unique<OrderProbeBuilder>(recorded);
      });

  const std::string google_path = "stream_order_google_task_events.csv";
  {
    std::ofstream os(google_path);
    ingest::write_task_events(os, fixture_trace(21));
  }
  const std::string csv_path = "stream_order_native.csv";
  trace::write_csv_file(csv_path, fixture_trace(22));

  std::vector<ScenarioSpec> specs;
  {
    ScenarioSpec spec;
    spec.name = "order_syn";
    spec.trace.seed = 21;
    spec.trace.horizon_s = 2.0 * 3600.0;
    spec.trace.arrival_rate = 0.05;
    specs.push_back(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "order_google";
    spec.trace.source = "google:" + google_path;
    spec.trace.sample_job_filter = true;
    specs.push_back(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "order_csv";
    spec.trace.source = "csv:" + csv_path;
    spec.trace.max_jobs = 30;
    specs.push_back(spec);
  }
  for (auto& spec : specs) {
    spec.predictor = "order_probe";  // estimation view: kReplay (default)
    Seen expected;
    for (const auto& job : make_replay_trace(spec.trace).jobs) {
      for (const auto& task : job.tasks) {
        expected.emplace_back(task.job_id, task.length_s);
      }
    }
    ASSERT_FALSE(expected.empty()) << spec.name;

    recorded->clear();
    (void)ScenarioRunner(spec).run_streamed();
    EXPECT_EQ(*recorded, expected) << spec.name << " (streamed feed)";

    recorded->clear();
    (void)ScenarioRunner(spec).run_materialized();
    EXPECT_EQ(*recorded, expected) << spec.name << " (materialized feed)";
  }
}

// SharedTraceCursor pass accounting: a lazy source pays one pass per phase
// that touches it; a single-pass source serves estimation AND replay from
// one parse; a no-observation predictor never triggers the estimation pass.
TEST(SingleCursor, ReadAccountingPerSourceKind) {
  register_custom_grouped();
  const std::string csv_path = "stream_reads_native.csv";
  trace::write_csv_file(csv_path, fixture_trace(23));

  ScenarioSpec synthetic;
  synthetic.name = "reads_syn";
  synthetic.trace.seed = 23;
  synthetic.trace.horizon_s = 2.0 * 3600.0;
  synthetic.trace.arrival_rate = 0.05;
  synthetic.predictor = "custom_grouped";

  ScenarioSpec csv = synthetic;
  csv.name = "reads_csv";
  csv.trace.source = "csv:" + csv_path;

  // Lazy source, estimating predictor: one generation pass per phase.
  const RunArtifact syn_streamed = ScenarioRunner(synthetic).run_streamed();
  EXPECT_EQ(syn_streamed.trace_reads, 2u);
  EXPECT_EQ(syn_streamed.rows_read, 2 * syn_streamed.trace_tasks);

  // Lazy source, oracle: the estimation pass disappears entirely.
  ScenarioSpec oracle = synthetic;
  oracle.predictor = "oracle";
  const RunArtifact oracle_streamed = ScenarioRunner(oracle).run_streamed();
  EXPECT_EQ(oracle_streamed.trace_reads, 1u);
  EXPECT_EQ(oracle_streamed.rows_read, oracle_streamed.trace_tasks);

  // Single-pass source (csv parses whole-input): estimation + replay share
  // ONE read even for a custom registered predictor — the tee.
  const RunArtifact csv_streamed = ScenarioRunner(csv).run_streamed();
  EXPECT_EQ(csv_streamed.trace_reads, 1u);
  EXPECT_GE(csv_streamed.rows_read, csv_streamed.trace_tasks);

  // The materialized path reads once too (estimation observes the replay
  // set in place) — and the unified entry point routes csv there.
  const RunArtifact csv_unified = ScenarioRunner(csv).run();
  EXPECT_EQ(csv_unified.trace_reads, 1u);
  const RunArtifact syn_materialized =
      ScenarioRunner(synthetic).run_materialized();
  EXPECT_EQ(syn_materialized.trace_reads, 1u);
}

/// JobSource over a pre-built job vector (yields owned copies).
class VectorJobSource final : public sim::JobSource {
 public:
  explicit VectorJobSource(const std::vector<trace::JobRecord>& jobs)
      : jobs_(jobs) {}

  std::size_t next_jobs(std::size_t max_jobs,
                        std::vector<trace::JobRecord>& out) override {
    std::size_t n = 0;
    while (n < max_jobs && next_ < jobs_.size()) {
      out.push_back(jobs_[next_]);
      ++next_;
      ++n;
    }
    return n;
  }

 private:
  const std::vector<trace::JobRecord>& jobs_;
  std::size_t next_ = 0;
};

TEST(StreamChunkBoundaries, TiedArrivalsAcrossChunkBoundaries) {
  // Jobs with *identical* arrival timestamps straddling every chunk
  // boundary (batch_jobs = 1 splits each tie): arrivals must keep beating
  // same-time dynamic events and admit in job order, exactly as when every
  // arrival event was scheduled up front.
  trace::Trace trace;
  trace.horizon_s = 4000.0;
  auto add_job = [&trace](std::uint64_t id, double arrival, double length,
                          std::vector<double> failures) {
    trace::JobRecord job;
    job.id = id;
    job.arrival_s = arrival;
    trace::TaskRecord task;
    task.job_id = id;
    task.length_s = length;
    task.memory_mb = 100.0;
    task.priority = 5;
    task.failure_dates = std::move(failures);
    job.tasks.push_back(task);
    trace.jobs.push_back(job);
    return trace.jobs.size() - 1;
  };
  add_job(1, 10.0, 100.0, {40.0});
  // Three jobs tied at t=110 — and job 1's task completes at exactly
  // t=110 + restart effects aside, its clean path would finish at 110+40
  // rollback... regardless, the tie among arrivals themselves is the edge.
  add_job(2, 110.0, 50.0, {});
  add_job(3, 110.0, 50.0, {});
  add_job(4, 110.0, 200.0, {25.0, 90.0});
  add_job(5, 500.0, 300.0, {});

  const core::PolicyPtr policy = PolicyRegistry::instance().make("formula3");
  sim::SimConfig config;
  auto fresh_sim = [&] {
    return sim::Simulation(config, *policy, sim::make_oracle_predictor());
  };

  const sim::SimResult materialized = fresh_sim().run(trace);
  ASSERT_EQ(materialized.outcomes.size(), trace.jobs.size());

  for (const std::size_t batch :
       {std::size_t{1}, std::size_t{2}, std::size_t{100}}) {
    VectorJobSource source(trace.jobs);
    const sim::SimResult streamed = fresh_sim().run_stream(source, batch);
    std::vector<RunArtifact> a(2);
    a[0].result = materialized;
    a[1].result = streamed;
    EXPECT_EQ(render({a[0]}), render({a[1]}))
        << "tied arrivals diverged at batch_jobs=" << batch;
  }
}

}  // namespace
}  // namespace cloudcr::api
