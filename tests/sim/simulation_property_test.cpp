// Property sweep: core simulation invariants must hold under EVERY
// combination of policy, storage placement, and adaptation mode. Each
// combination replays the same generated workload.

#include <gtest/gtest.h>

#include <memory>

#include "sim/predictors.hpp"
#include "sim/simulation.hpp"
#include "trace/generator.hpp"

namespace cloudcr::sim {
namespace {

struct SweepCase {
  const char* label;
  const char* policy;  // "formula3" | "young" | "daly" | "none" | "fixed"
  PlacementMode placement;
  core::AdaptationMode adaptation;
  storage::DeviceKind shared;
};

std::unique_ptr<core::CheckpointPolicy> make_policy(const std::string& name) {
  if (name == "formula3") return std::make_unique<core::MnofPolicy>();
  if (name == "young") return std::make_unique<core::YoungPolicy>();
  if (name == "daly") return std::make_unique<core::DalyPolicy>();
  if (name == "none") return std::make_unique<core::NoCheckpointPolicy>();
  return std::make_unique<core::FixedIntervalPolicy>(45.0);
}

trace::Trace sweep_trace() {
  trace::GeneratorConfig cfg;
  cfg.seed = 4242;
  cfg.horizon_s = 2.0 * 3600.0;
  cfg.arrival_rate = 0.08;
  cfg.workload.long_service_fraction = 0.0;
  return trace::TraceGenerator(cfg).generate();
}

class SimulationInvariants : public ::testing::TestWithParam<SweepCase> {
 protected:
  SimResult run() {
    const auto trace = sweep_trace();
    const auto& p = GetParam();
    SimConfig cfg;
    cfg.placement = p.placement;
    cfg.adaptation = p.adaptation;
    cfg.shared_kind = p.shared;
    const auto policy = make_policy(p.policy);
    Simulation sim(cfg, *policy, make_grouped_predictor(trace));
    auto res = sim.run(trace);
    EXPECT_EQ(res.outcomes.size() + res.incomplete_jobs, trace.job_count());
    return res;
  }
};

TEST_P(SimulationInvariants, AllJobsComplete) {
  const auto res = run();
  EXPECT_EQ(res.incomplete_jobs, 0u);
}

TEST_P(SimulationInvariants, WprWithinUnitInterval) {
  const auto res = run();
  for (const auto& o : res.outcomes) {
    EXPECT_GT(o.wpr(), 0.0) << "job " << o.job_id;
    EXPECT_LE(o.wpr(), 1.0 + 1e-9) << "job " << o.job_id;
  }
}

TEST_P(SimulationInvariants, NonNegativeAccounting) {
  const auto res = run();
  for (const auto& o : res.outcomes) {
    EXPECT_GE(o.checkpoint_s, -1e-9);
    EXPECT_GE(o.rollback_s, -1e-9);
    EXPECT_GE(o.restart_s, -1e-9);
    EXPECT_GE(o.queue_s, -1e-9);
    EXPECT_GE(o.task_wallclock_s, o.workload_s - 1e-6);
  }
}

TEST_P(SimulationInvariants, TaskWallclockDecomposition) {
  // Per-task wall-clock mass = work + checkpoints + rollbacks + restarts +
  // queueing, for every job structure (the per-task ledger is exact).
  const auto res = run();
  for (const auto& o : res.outcomes) {
    EXPECT_NEAR(o.task_wallclock_s,
                o.workload_s + o.checkpoint_s + o.rollback_s + o.restart_s +
                    o.queue_s,
                1e-6)
        << "job " << o.job_id;
  }
}

TEST_P(SimulationInvariants, DeterministicReplay) {
  const auto r1 = run();
  const auto r2 = run();
  ASSERT_EQ(r1.outcomes.size(), r2.outcomes.size());
  for (std::size_t i = 0; i < r1.outcomes.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.outcomes[i].wallclock_s, r2.outcomes[i].wallclock_s);
    EXPECT_EQ(r1.outcomes[i].checkpoints, r2.outcomes[i].checkpoints);
    EXPECT_EQ(r1.outcomes[i].failures, r2.outcomes[i].failures);
  }
}

TEST_P(SimulationInvariants, FailureCountMatchesInjectedKills) {
  // Every failure charged to a job corresponds to a kill consumed from the
  // trace; totals must agree with the per-outcome sums.
  const auto res = run();
  std::size_t from_outcomes = 0;
  for (const auto& o : res.outcomes) from_outcomes += o.failures;
  EXPECT_EQ(res.total_failures, from_outcomes);
}

constexpr SweepCase kCases[] = {
    {"f3_auto_adaptive", "formula3", PlacementMode::kAutoSelect,
     core::AdaptationMode::kAdaptive, storage::DeviceKind::kDmNfs},
    {"f3_local_adaptive", "formula3", PlacementMode::kForceLocal,
     core::AdaptationMode::kAdaptive, storage::DeviceKind::kDmNfs},
    {"f3_shared_dmnfs", "formula3", PlacementMode::kForceShared,
     core::AdaptationMode::kAdaptive, storage::DeviceKind::kDmNfs},
    {"f3_shared_nfs", "formula3", PlacementMode::kForceShared,
     core::AdaptationMode::kAdaptive, storage::DeviceKind::kSharedNfs},
    {"f3_auto_static", "formula3", PlacementMode::kAutoSelect,
     core::AdaptationMode::kStatic, storage::DeviceKind::kDmNfs},
    {"young_auto_adaptive", "young", PlacementMode::kAutoSelect,
     core::AdaptationMode::kAdaptive, storage::DeviceKind::kDmNfs},
    {"young_shared_nfs", "young", PlacementMode::kForceShared,
     core::AdaptationMode::kAdaptive, storage::DeviceKind::kSharedNfs},
    {"daly_auto", "daly", PlacementMode::kAutoSelect,
     core::AdaptationMode::kAdaptive, storage::DeviceKind::kDmNfs},
    {"none_auto", "none", PlacementMode::kAutoSelect,
     core::AdaptationMode::kAdaptive, storage::DeviceKind::kDmNfs},
    {"fixed_shared", "fixed", PlacementMode::kForceShared,
     core::AdaptationMode::kAdaptive, storage::DeviceKind::kDmNfs},
};

INSTANTIATE_TEST_SUITE_P(Sweep, SimulationInvariants,
                         ::testing::ValuesIn(kCases),
                         [](const auto& param_info) {
                           return std::string(param_info.param.label);
                         });

// ---------------------------------------------------------------------------
// Targeted semantics around interrupted phases and the predictor hook.
// ---------------------------------------------------------------------------

trace::Trace single_task_trace(std::vector<double> failures,
                               double length = 400.0) {
  trace::Trace t;
  trace::JobRecord job;
  job.id = 1;
  job.structure = trace::JobStructure::kSequentialTasks;
  trace::TaskRecord task;
  task.job_id = 1;
  task.length_s = length;
  task.memory_mb = 160.0;
  task.priority = 2;
  task.failure_dates = std::move(failures);
  job.tasks.push_back(task);
  t.jobs.push_back(job);
  t.horizon_s = 1e6;
  return t;
}

StatsPredictor stats_of(double mnof, double mtbf) {
  return [mnof, mtbf](const trace::TaskRecord&, int) {
    return core::FailureStats{mnof, mtbf};
  };
}

TEST(SimulationRefunds, KillDuringCheckpointRefundsUnspentCost) {
  // Fixed 100 s intervals on the shared disk: the first checkpoint starts at
  // active time 100 and costs 1.67 s; a kill at 100.5 lands mid-checkpoint.
  const auto trace = single_task_trace({100.5});
  const core::FixedIntervalPolicy policy(100.0);
  SimConfig cfg;
  cfg.placement = PlacementMode::kForceShared;
  Simulation sim(cfg, policy, stats_of(1.0, 100.0));
  const auto res = sim.run(trace);
  ASSERT_EQ(res.outcomes.size(), 1u);
  const auto& o = res.outcomes.front();
  // Only the elapsed 0.5 s of checkpoint work may be charged for the
  // interrupted op; later checkpoints charge fully.
  EXPECT_EQ(o.failures, 1u);
  EXPECT_NEAR(o.task_wallclock_s,
              o.workload_s + o.checkpoint_s + o.rollback_s + o.restart_s +
                  o.queue_s,
              1e-6);
  // The interrupted checkpoint never completed: rollback loses the full
  // 100 s of progress.
  EXPECT_NEAR(o.rollback_s, 100.0, 1e-6);
}

TEST(SimulationRefunds, KillDuringRestoreRefundsUnspentRestart) {
  // Restart cost at 160 MB type B is 1.45 s; a second kill 0.4 s into the
  // restore interrupts it.
  const auto trace = single_task_trace({50.0, 50.4});
  const core::NoCheckpointPolicy policy;
  SimConfig cfg;
  cfg.placement = PlacementMode::kForceShared;
  Simulation sim(cfg, policy, stats_of(0.0, 0.0));
  const auto res = sim.run(trace);
  ASSERT_EQ(res.outcomes.size(), 1u);
  const auto& o = res.outcomes.front();
  EXPECT_EQ(o.failures, 2u);
  // First restart truncated at 0.4 s + second full restart 1.45 s.
  EXPECT_NEAR(o.restart_s, 0.4 + 1.45, 1e-6);
  EXPECT_NEAR(o.task_wallclock_s,
              o.workload_s + o.checkpoint_s + o.rollback_s + o.restart_s +
                  o.queue_s,
              1e-6);
}

TEST(SimulationPredictorHook, UnderPredictionStopsCheckpointingEarly) {
  const auto trace = single_task_trace({}, 1000.0);
  const core::FixedIntervalPolicy policy(100.0);
  SimConfig cfg;
  // Planner believes the task is only 350 s long.
  cfg.length_predictor = [](const trace::TaskRecord&) { return 350.0; };
  Simulation sim(cfg, policy, stats_of(1.0, 100.0));
  const auto res = sim.run(trace);
  ASSERT_EQ(res.outcomes.size(), 1u);
  // Checkpoints at 100, 200, 300 only (positions beyond the predicted end
  // are not scheduled); with exact prediction there would be nine.
  EXPECT_EQ(res.outcomes.front().checkpoints, 3u);
}

TEST(SimulationPredictorHook, ExactPredictorMatchesDefault) {
  const auto mk = [] { return single_task_trace({250.0}, 600.0); };
  const core::MnofPolicy policy;
  SimConfig with_hook;
  with_hook.length_predictor = [](const trace::TaskRecord& task) {
    return task.length_s;
  };
  SimConfig without_hook;
  const auto r1 =
      Simulation(with_hook, policy, stats_of(1.5, 200.0)).run(mk());
  const auto r2 =
      Simulation(without_hook, policy, stats_of(1.5, 200.0)).run(mk());
  ASSERT_EQ(r1.outcomes.size(), 1u);
  ASSERT_EQ(r2.outcomes.size(), 1u);
  EXPECT_DOUBLE_EQ(r1.outcomes[0].wallclock_s, r2.outcomes[0].wallclock_s);
  EXPECT_EQ(r1.outcomes[0].checkpoints, r2.outcomes[0].checkpoints);
}

}  // namespace
}  // namespace cloudcr::sim
