// Property: EventQueue pops in exactly the (time, scheduling-order) total
// order, under any interleaving of schedule/cancel/pop/clear — the calendar
// layout (bucket widths, rebuilds, cursor walks, sparse-region fallbacks,
// shrink/grow) must be invisible. The reference model is a std::multimap
// keyed the same way. The workload mixes the regimes that stress distinct
// code paths: dense near-term clusters, far-future stragglers (bimodal
// widths), exact time ties (seq ordering), heavy cancellation (stale
// entries), and drain-downs (shrink + locate_min).

#include "sim/event_queue.hpp"

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace cloudcr::sim {
namespace {

struct Model {
  // (time, insertion order) -> marker value; multimap iteration order is
  // exactly the queue's contract.
  std::multimap<std::pair<double, std::uint64_t>, int> entries;
  std::uint64_t next_seq = 0;
};

class QueueVsModel {
 public:
  EventId schedule(double time, int marker) {
    const auto key = std::make_pair(time, model_.next_seq++);
    model_.entries.emplace(key, marker);
    const EventId id = queue_.schedule(time, [this, marker] {
      fired_marker_ = marker;
    });
    ids_.emplace_back(id, key);
    return id;
  }

  void cancel_random(std::uint64_t pick) {
    if (ids_.empty()) return;
    const auto [id, key] = ids_[pick % ids_.size()];
    const bool model_had = model_.entries.erase(key) > 0;
    EXPECT_EQ(queue_.cancel(id), model_had);
  }

  void pop_and_check() {
    ASSERT_FALSE(model_.entries.empty());
    ASSERT_FALSE(queue_.empty());
    const auto expected = model_.entries.begin();
    EXPECT_DOUBLE_EQ(queue_.next_time(), expected->first.first);
    auto [time, fn] = queue_.pop();
    EXPECT_DOUBLE_EQ(time, expected->first.first);
    fired_marker_ = -1;
    fn();
    EXPECT_EQ(fired_marker_, expected->second)
        << "queue popped a different event than the reference order";
    model_.entries.erase(expected);
  }

  void clear() {
    queue_.clear();
    model_.entries.clear();
    ids_.clear();
  }

  [[nodiscard]] std::size_t size() const { return model_.entries.size(); }

  void check_counters() const {
    EXPECT_EQ(queue_.size(), model_.entries.size());
    EXPECT_EQ(queue_.empty(), model_.entries.empty());
  }

 private:
  EventQueue queue_;
  Model model_;
  std::vector<std::pair<EventId, std::pair<double, std::uint64_t>>> ids_;
  int fired_marker_ = -1;
};

std::uint64_t splitmix(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

TEST(EventQueueProperty, MatchesReferenceOrderUnderMixedChurn) {
  QueueVsModel q;
  std::uint64_t rng = 0xc0ffee;
  int marker = 0;
  double clock = 0.0;  // schedules are >= the last pop, like the engine
  for (int step = 0; step < 60000; ++step) {
    const std::uint64_t roll = splitmix(rng) % 100;
    if (roll < 55 || q.size() == 0) {
      // Bimodal times: mostly a dense near cluster, sometimes far-future
      // stragglers; frequent exact ties via quantization.
      double t = clock;
      const std::uint64_t kind = splitmix(rng) % 10;
      if (kind < 6) {
        t += static_cast<double>(splitmix(rng) % 1000) * 0.01;  // dense
      } else if (kind < 9) {
        t += static_cast<double>(splitmix(rng) % 50);  // medium, tie-prone
      } else {
        t += 1.0e6 + static_cast<double>(splitmix(rng) % 5) * 2.6e6;  // far
      }
      q.schedule(t, marker++);
    } else if (roll < 70) {
      q.cancel_random(splitmix(rng));
    } else if (roll < 98) {
      q.pop_and_check();
    } else {
      q.clear();
      clock = 0.0;
    }
    if (step % 1024 == 0) q.check_counters();
  }
  // Full drain: exercises shrink rebuilds and the sparse locate_min path.
  while (q.size() > 0) q.pop_and_check();
  q.check_counters();
}

TEST(EventQueueProperty, DrainAfterBurstsKeepsOrder) {
  // Alternating burst/drain cycles around the grow/shrink thresholds.
  QueueVsModel q;
  std::uint64_t rng = 42;
  int marker = 0;
  for (int cycle = 0; cycle < 20; ++cycle) {
    const std::size_t burst = 1 + splitmix(rng) % 700;
    for (std::size_t i = 0; i < burst; ++i) {
      q.schedule(static_cast<double>(splitmix(rng) % 4096) * 0.125,
                 marker++);
    }
    const std::size_t keep = splitmix(rng) % 32;
    while (q.size() > keep) q.pop_and_check();
  }
  while (q.size() > 0) q.pop_and_check();
}

}  // namespace
}  // namespace cloudcr::sim
