#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace cloudcr::sim {
namespace {

TEST(Engine, ClockAdvancesWithEvents) {
  Engine e;
  std::vector<double> times;
  e.schedule_at(1.0, [&] { times.push_back(e.now()); });
  e.schedule_at(2.5, [&] { times.push_back(e.now()); });
  const std::size_t n = e.run();
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.5}));
  EXPECT_DOUBLE_EQ(e.now(), 2.5);
}

TEST(Engine, ScheduleInIsRelative) {
  Engine e;
  double fired_at = -1.0;
  e.schedule_at(10.0, [&] {
    e.schedule_in(5.0, [&] { fired_at = e.now(); });
  });
  e.run();
  EXPECT_DOUBLE_EQ(fired_at, 15.0);
}

TEST(Engine, RejectsPastScheduling) {
  Engine e;
  e.schedule_at(10.0, [] {});
  e.run();
  EXPECT_THROW(e.schedule_at(5.0, [] {}), std::invalid_argument);
  EXPECT_THROW(e.schedule_in(-1.0, [] {}), std::invalid_argument);
}

TEST(Engine, RunUntilStopsAtBoundary) {
  Engine e;
  int fired = 0;
  e.schedule_at(1.0, [&] { ++fired; });
  e.schedule_at(2.0, [&] { ++fired; });
  e.schedule_at(10.0, [&] { ++fired; });
  const std::size_t n = e.run_until(5.0);
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(e.now(), 5.0);
  EXPECT_EQ(e.pending_events(), 1u);
  e.run();
  EXPECT_EQ(fired, 3);
}

TEST(Engine, CancelWorksThroughEngine) {
  Engine e;
  int fired = 0;
  const EventId id = e.schedule_at(1.0, [&] { ++fired; });
  EXPECT_TRUE(e.cancel(id));
  e.run();
  EXPECT_EQ(fired, 0);
}

TEST(Engine, IdleReflectsQueue) {
  Engine e;
  EXPECT_TRUE(e.idle());
  e.schedule_at(1.0, [] {});
  EXPECT_FALSE(e.idle());
  e.run();
  EXPECT_TRUE(e.idle());
}

TEST(Engine, CascadedEventsRunToCompletion) {
  Engine e;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 100) e.schedule_in(1.0, chain);
  };
  e.schedule_at(0.0, chain);
  const std::size_t n = e.run();
  EXPECT_EQ(n, 100u);
  EXPECT_DOUBLE_EQ(e.now(), 99.0);
}

}  // namespace
}  // namespace cloudcr::sim
