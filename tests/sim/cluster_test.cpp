#include "sim/cluster.hpp"

#include <gtest/gtest.h>

namespace cloudcr::sim {
namespace {

TEST(Vm, AllocationAccounting) {
  Vm vm(0, 0, 1024.0);
  EXPECT_TRUE(vm.allocate(512.0));
  EXPECT_DOUBLE_EQ(vm.available_mb(), 512.0);
  EXPECT_EQ(vm.task_count(), 1u);
  EXPECT_TRUE(vm.allocate(512.0));
  EXPECT_FALSE(vm.allocate(1.0));
  vm.release(512.0);
  EXPECT_DOUBLE_EQ(vm.available_mb(), 512.0);
  EXPECT_EQ(vm.task_count(), 1u);
}

TEST(Vm, RejectsNegativeAllocation) {
  Vm vm(0, 0, 1024.0);
  EXPECT_FALSE(vm.allocate(-1.0));
}

TEST(Vm, ReleaseClampsAtZero) {
  Vm vm(0, 0, 1024.0);
  vm.allocate(100.0);
  vm.release(500.0);  // defensive over-release
  EXPECT_DOUBLE_EQ(vm.used_mb(), 0.0);
}

TEST(Cluster, PaperTopologyDefaults) {
  const Cluster c;
  EXPECT_EQ(c.vm_count(), 32u * 7u);
  EXPECT_DOUBLE_EQ(c.vm(0).capacity_mb(), 1024.0);
  EXPECT_DOUBLE_EQ(c.total_available_mb(), 32.0 * 7.0 * 1024.0);
}

TEST(Cluster, RejectsDegenerateConfig) {
  EXPECT_THROW(Cluster({0, 7, 1024.0}), std::invalid_argument);
  EXPECT_THROW(Cluster({32, 0, 1024.0}), std::invalid_argument);
  EXPECT_THROW(Cluster({32, 7, 0.0}), std::invalid_argument);
}

TEST(Cluster, HostsAssignedRoundRobinBlocks) {
  const Cluster c({4, 3, 1024.0});
  EXPECT_EQ(c.vm(0).host(), 0u);
  EXPECT_EQ(c.vm(2).host(), 0u);
  EXPECT_EQ(c.vm(3).host(), 1u);
  EXPECT_EQ(c.vm(11).host(), 3u);
}

TEST(Cluster, GreedySelectsMaxAvailableMemory) {
  Cluster c({2, 2, 1024.0});
  // Consume memory so VM 2 has the most available.
  c.vm(0).allocate(800.0);
  c.vm(1).allocate(600.0);
  c.vm(3).allocate(400.0);
  const auto pick = c.select_vm(100.0);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 2u);
}

TEST(Cluster, SelectRespectsFit) {
  Cluster c({1, 2, 1024.0});
  c.vm(0).allocate(1000.0);
  c.vm(1).allocate(900.0);
  const auto pick = c.select_vm(200.0);
  EXPECT_FALSE(pick.has_value());
  const auto pick2 = c.select_vm(100.0);
  ASSERT_TRUE(pick2.has_value());
  EXPECT_EQ(*pick2, 1u);
}

TEST(Cluster, ExcludeHostSkipsItsVms) {
  Cluster c({2, 2, 1024.0});
  // Host 0's VMs are the emptiest.
  c.vm(2).allocate(500.0);
  c.vm(3).allocate(500.0);
  const auto pick = c.select_vm(100.0, HostId{0});
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(c.vm(*pick).host(), 1u);
}

TEST(Cluster, ExcludeCanEliminateAllCandidates) {
  Cluster c({1, 2, 1024.0});
  EXPECT_FALSE(c.select_vm(100.0, HostId{0}).has_value());
}

TEST(Cluster, RunningTasksCountsAllocations) {
  Cluster c({2, 2, 1024.0});
  EXPECT_EQ(c.running_tasks(), 0u);
  c.vm(0).allocate(10.0);
  c.vm(3).allocate(10.0);
  EXPECT_EQ(c.running_tasks(), 2u);
}

}  // namespace
}  // namespace cloudcr::sim
