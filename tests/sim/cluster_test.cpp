#include "sim/cluster.hpp"

#include <gtest/gtest.h>

namespace cloudcr::sim {
namespace {

TEST(Vm, AllocationAccounting) {
  Vm vm(0, 0, 1024.0);
  EXPECT_TRUE(vm.allocate(512.0));
  EXPECT_DOUBLE_EQ(vm.available_mb(), 512.0);
  EXPECT_EQ(vm.task_count(), 1u);
  EXPECT_TRUE(vm.allocate(512.0));
  EXPECT_FALSE(vm.allocate(1.0));
  vm.release(512.0);
  EXPECT_DOUBLE_EQ(vm.available_mb(), 512.0);
  EXPECT_EQ(vm.task_count(), 1u);
}

TEST(Vm, RejectsNegativeAllocation) {
  Vm vm(0, 0, 1024.0);
  EXPECT_FALSE(vm.allocate(-1.0));
}

TEST(Vm, ReleaseClampsAtZero) {
  Vm vm(0, 0, 1024.0);
  vm.allocate(100.0);
  vm.release(500.0);  // defensive over-release
  EXPECT_DOUBLE_EQ(vm.used_mb(), 0.0);
}

TEST(Cluster, PaperTopologyDefaults) {
  const Cluster c;
  EXPECT_EQ(c.vm_count(), 32u * 7u);
  EXPECT_DOUBLE_EQ(c.vm(0).capacity_mb(), 1024.0);
  EXPECT_DOUBLE_EQ(c.total_available_mb(), 32.0 * 7.0 * 1024.0);
}

TEST(Cluster, RejectsDegenerateConfig) {
  EXPECT_THROW(Cluster({0, 7, 1024.0}), std::invalid_argument);
  EXPECT_THROW(Cluster({32, 0, 1024.0}), std::invalid_argument);
  EXPECT_THROW(Cluster({32, 7, 0.0}), std::invalid_argument);
}

TEST(Cluster, HostsAssignedRoundRobinBlocks) {
  const Cluster c({4, 3, 1024.0});
  EXPECT_EQ(c.vm(0).host(), 0u);
  EXPECT_EQ(c.vm(2).host(), 0u);
  EXPECT_EQ(c.vm(3).host(), 1u);
  EXPECT_EQ(c.vm(11).host(), 3u);
}

TEST(Cluster, GreedySelectsMaxAvailableMemory) {
  Cluster c({2, 2, 1024.0});
  // Consume memory so VM 2 has the most available.
  c.allocate(0, 800.0);
  c.allocate(1, 600.0);
  c.allocate(3, 400.0);
  const auto pick = c.select_vm(100.0);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 2u);
}

TEST(Cluster, SelectRespectsFit) {
  Cluster c({1, 2, 1024.0});
  c.allocate(0, 1000.0);
  c.allocate(1, 900.0);
  const auto pick = c.select_vm(200.0);
  EXPECT_FALSE(pick.has_value());
  const auto pick2 = c.select_vm(100.0);
  ASSERT_TRUE(pick2.has_value());
  EXPECT_EQ(*pick2, 1u);
}

TEST(Cluster, ExcludeHostSkipsItsVms) {
  Cluster c({2, 2, 1024.0});
  // Host 0's VMs are the emptiest.
  c.allocate(2, 500.0);
  c.allocate(3, 500.0);
  const auto pick = c.select_vm(100.0, HostId{0});
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(c.vm(*pick).host(), 1u);
}

TEST(Cluster, ExcludeCanEliminateAllCandidates) {
  Cluster c({1, 2, 1024.0});
  EXPECT_FALSE(c.select_vm(100.0, HostId{0}).has_value());
}

TEST(Cluster, RunningTasksCountsAllocations) {
  Cluster c({2, 2, 1024.0});
  EXPECT_EQ(c.running_tasks(), 0u);
  c.allocate(0, 10.0);
  c.allocate(3, 10.0);
  EXPECT_EQ(c.running_tasks(), 2u);
}

TEST(Cluster, CanFitMatchesSelect) {
  Cluster c({2, 2, 1024.0});
  c.allocate(0, 1000.0);
  c.allocate(1, 1000.0);
  EXPECT_TRUE(c.can_fit(500.0));
  EXPECT_FALSE(c.can_fit(500.0, HostId{1}));
  EXPECT_TRUE(c.can_fit(20.0, HostId{1}));
  EXPECT_DOUBLE_EQ(c.max_available_mb(), 1024.0);
  EXPECT_DOUBLE_EQ(c.max_vm_capacity_mb(), 1024.0);
}

TEST(Cluster, ResetRestoresFullCapacity) {
  Cluster c({2, 2, 1024.0});
  c.allocate(0, 1000.0);
  c.allocate(2, 512.0);
  c.reset();
  EXPECT_EQ(c.running_tasks(), 0u);
  EXPECT_DOUBLE_EQ(c.total_available_mb(), 4.0 * 1024.0);
  const auto pick = c.select_vm(100.0);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 0u);  // all-equal tie resolves to the lowest VM id
}

/// Reference implementation: the original full scan. The index must agree
/// with it on every query, including tie-breaking, or replays lose their
/// bit-identical placement sequence.
std::optional<VmId> scan_select(const Cluster& c, double mem,
                                std::optional<HostId> exclude) {
  std::optional<VmId> best;
  double best_avail = -1.0;
  for (VmId id = 0; id < c.vm_count(); ++id) {
    const Vm& vm = c.vm(id);
    if (exclude && vm.host() == *exclude) continue;
    const double avail = vm.available_mb();
    if (avail >= mem && avail > best_avail) {
      best = id;
      best_avail = avail;
    }
  }
  return best;
}

TEST(Cluster, IndexMatchesFullScanUnderRandomChurn) {
  Cluster c({8, 3, 1024.0});
  std::uint64_t state = 0x5eedULL;
  auto next = [&state] {  // splitmix64
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  struct Alloc {
    VmId vm;
    double mem;
  };
  std::vector<Alloc> live;
  for (int step = 0; step < 4000; ++step) {
    // Quantized demands produce frequent exact ties, the hard case.
    const double mem = static_cast<double>(64 * (1 + next() % 12));
    const std::optional<HostId> exclude =
        (next() % 3 == 0) ? std::optional<HostId>{next() % 8} : std::nullopt;
    const auto expected = scan_select(c, mem, exclude);
    const auto got = c.select_vm(mem, exclude);
    ASSERT_EQ(expected, got) << "step " << step;
    ASSERT_EQ(expected.has_value(), c.can_fit(mem, exclude)) << "step " << step;
    if (got && next() % 4 != 0) {
      ASSERT_TRUE(c.allocate(*got, mem));
      live.push_back({*got, mem});
    } else if (!live.empty()) {
      const std::size_t victim = next() % live.size();
      c.release(live[victim].vm, live[victim].mem);
      live[victim] = live.back();
      live.pop_back();
    }
  }
}

}  // namespace
}  // namespace cloudcr::sim
