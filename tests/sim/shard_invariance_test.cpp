// The shard-count-invariance house property: shards=K must produce an
// artifact byte-identical to shards=1 for EVERY K — sharding is a wall-time
// knob, never an output knob. The sharded runtime only ever precomputes
// work the committing shard would otherwise do inline, through the same
// compiled functions (sim/ckpt_sequence.cpp), so any divergence here means
// a speculative plan leaked state the serial engine would not have had.
//
// The grid mirrors the snapshot-identity suite: every built-in source
// family (synthetic generator, native csv, slurm table) x three simulation
// seeds x all three scheduler families (fcfs, backfill:easy, preempt:ckpt),
// each at shards in {2, 4, 7} against the shards=1 reference. Odd shard
// counts are deliberate — a worker pool of K-1 threads with K=7 exercises
// uneven plan interleavings that powers of two miss. A second test pins
// the classic tie hazard directly: arrivals tied at one timestamp landing
// exactly on a streaming epoch boundary, replayed sharded.

#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include <fstream>
#include <random>

#include "api/artifact_io.hpp"
#include "api/registry.hpp"
#include "api/runner.hpp"
#include "api/scenario.hpp"
#include "metrics/export.hpp"
#include "sim/predictors.hpp"
#include "sim/simulation.hpp"
#include "trace/generator.hpp"
#include "trace/trace_io.hpp"

namespace cloudcr::sim {
namespace {

/// Canonical bytes of an artifact: host-timing fields (the only
/// nondeterministic ones) zeroed, and the spec echo's shards key
/// normalized — the echo intentionally keeps the requested shard count
/// (provenance), which is exactly the one spec field allowed to differ.
std::string canonical_json(api::RunArtifact artifact) {
  artifact.wall_time_s = 0.0;
  artifact.estimation_wall_s = 0.0;
  artifact.peak_rss_mb = 0.0;
  artifact.spec.shards = 1;
  std::ostringstream os;
  api::write_artifact_json(os, artifact, /*include_outcomes=*/true);
  return os.str();
}

std::string write_csv_fixture(std::uint64_t seed) {
  const std::string path = testing::TempDir() + "shard_inv_" +
                           std::to_string(seed) + ".csv";
  trace::GeneratorConfig cfg;
  cfg.seed = seed + 1000;
  cfg.horizon_s = 1800.0;
  cfg.arrival_rate = 0.08;
  cfg.sample_job_filter = false;
  cfg.workload.long_service_fraction = 0.0;
  trace::write_csv_file(path, trace::TraceGenerator(cfg).generate());
  return path;
}

std::string write_slurm_fixture(std::uint64_t seed) {
  const std::string path = testing::TempDir() + "shard_inv_" +
                           std::to_string(seed) + ".slurm";
  std::mt19937_64 rng(seed * 7919);
  std::uniform_real_distribution<double> duration(45.0, 400.0);
  std::uniform_int_distribution<int> nodes(1, 2);
  std::uniform_int_distribution<int> priority(1, 9);
  std::ofstream os(path);
  os << "JOBID SUBMIT DURATION NODES MEM_MB PRIORITY\n";
  for (int i = 0; i < 24; ++i) {
    os << (100 + i) << ' ' << (i * 62.5) << ' ' << duration(rng) << ' '
       << nodes(rng) << ' ' << 256 << ' ' << priority(rng) << '\n';
  }
  return path;
}

struct SourcePoint {
  std::string tag;
  std::string source;  ///< TraceSpec::source ("" = synthetic generator)
};

struct GridParam {
  std::uint64_t sim_seed;
  std::string sched;
};

std::vector<SourcePoint> source_points(std::uint64_t sim_seed) {
  return {
      {"synthetic", ""},
      {"csv", "csv:" + write_csv_fixture(sim_seed)},
      {"slurm", "slurm:" + write_slurm_fixture(sim_seed)},
  };
}

api::ScenarioSpec make_spec(const SourcePoint& point, const GridParam& p) {
  api::ScenarioSpec spec;
  spec.name = "shard_inv_" + point.tag + "_s" + std::to_string(p.sim_seed);
  spec.policy = "formula3";
  spec.sched = p.sched;
  spec.sim_seed = p.sim_seed;
  // A small cluster so the backfill/preempt points actually queue work —
  // preemption stashes tasks whose controller plans must stay valid.
  spec.cluster.hosts = 4;
  spec.cluster.vms_per_host = 2;
  if (point.source.empty()) {
    spec.trace.seed = p.sim_seed;
    spec.trace.horizon_s = 1800.0;
    spec.trace.arrival_rate = 0.08;
  } else {
    spec.trace.source = point.source;
  }
  return spec;
}

class ShardInvarianceTest : public testing::TestWithParam<GridParam> {};

TEST_P(ShardInvarianceTest, AnyShardCountMatchesSerialByteForByte) {
  const GridParam p = GetParam();
  for (const SourcePoint& point : source_points(p.sim_seed)) {
    api::ScenarioSpec spec = make_spec(point, p);
    const std::string reference =
        canonical_json(api::ScenarioRunner(spec).run());

    for (const std::uint32_t shards : {2u, 4u, 7u}) {
      spec.shards = shards;
      EXPECT_EQ(canonical_json(api::ScenarioRunner(spec).run()), reference)
          << point.tag << " sched='" << p.sched << "' seed=" << p.sim_seed
          << " shards=" << shards;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ShardInvarianceTest,
    testing::Values(GridParam{11u, "fcfs"}, GridParam{12u, "fcfs"},
                    GridParam{13u, "fcfs"},
                    GridParam{11u, "backfill:easy"},
                    GridParam{12u, "backfill:easy"},
                    GridParam{13u, "backfill:easy"},
                    GridParam{11u, "preempt:ckpt"},
                    GridParam{12u, "preempt:ckpt"},
                    GridParam{13u, "preempt:ckpt"}),
    [](const testing::TestParamInfo<GridParam>& info) {
      std::string sched = info.param.sched;
      for (char& c : sched) {
        if (c == ':') c = '_';
      }
      return sched + "_seed" + std::to_string(info.param.sim_seed);
    });

/// JobSource over a pre-built job vector (yields owned copies).
class VectorJobSource final : public JobSource {
 public:
  explicit VectorJobSource(const std::vector<trace::JobRecord>& jobs)
      : jobs_(jobs) {}

  std::size_t next_jobs(std::size_t max_jobs,
                        std::vector<trace::JobRecord>& out) override {
    std::size_t n = 0;
    while (n < max_jobs && next_ < jobs_.size()) {
      out.push_back(jobs_[next_]);
      ++next_;
      ++n;
    }
    return n;
  }

 private:
  const std::vector<trace::JobRecord>& jobs_;
  std::size_t next_ = 0;
};

// Arrivals tied at one timestamp, split across streaming epochs
// (batch_jobs=1 puts every tied job in its own admission epoch), replayed
// sharded: the tie-break (arrivals beat same-time dynamic events, in job
// order) is a committing-shard decision and must be untouched by how many
// planning workers exist or which plans happened to be ready.
TEST(ShardEpochBoundary, TiedArrivalsAtEpochBoundaryMatchSerial) {
  trace::Trace trace;
  trace.horizon_s = 4000.0;
  auto add_job = [&trace](std::uint64_t id, double arrival, double length,
                          std::vector<double> failures) {
    trace::JobRecord job;
    job.id = id;
    job.arrival_s = arrival;
    trace::TaskRecord task;
    task.job_id = id;
    task.length_s = length;
    task.memory_mb = 100.0;
    task.priority = 5;
    task.failure_dates = std::move(failures);
    job.tasks.push_back(task);
    trace.jobs.push_back(job);
  };
  add_job(1, 10.0, 100.0, {40.0});
  // Three jobs tied at t=110 — job 1's clean-completion instant — so the
  // epoch boundary lands exactly on the contended timestamp.
  add_job(2, 110.0, 50.0, {});
  add_job(3, 110.0, 50.0, {});
  add_job(4, 110.0, 200.0, {25.0, 90.0});
  add_job(5, 500.0, 300.0, {});

  const core::PolicyPtr policy =
      api::PolicyRegistry::instance().make("formula3");

  auto run_at = [&](std::uint32_t shards, std::size_t batch) {
    SimConfig config;
    config.shards = shards;
    Simulation sim(config, *policy, make_oracle_predictor());
    VectorJobSource source(trace.jobs);
    const SimResult result = sim.run_stream(source, batch);
    std::ostringstream os;
    os << result.makespan_s << " ckpt=" << result.total_checkpoints
       << " fail=" << result.total_failures << "\n";
    for (const auto& outcome : result.outcomes) {
      metrics::write_outcome_json(os, outcome);
      os << "\n";
    }
    return os.str();
  };

  for (const std::size_t batch :
       {std::size_t{1}, std::size_t{2}, std::size_t{100}}) {
    const std::string serial = run_at(1, batch);
    for (const std::uint32_t shards : {2u, 4u}) {
      EXPECT_EQ(run_at(shards, batch), serial)
          << "tied arrivals diverged at batch_jobs=" << batch
          << " shards=" << shards;
    }
  }
}

}  // namespace
}  // namespace cloudcr::sim
