#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include "sim/predictors.hpp"
#include "trace/generator.hpp"

namespace cloudcr::sim {
namespace {

using trace::JobRecord;
using trace::JobStructure;
using trace::TaskRecord;
using trace::Trace;

TaskRecord make_task(double length, double mem, int priority,
                     std::vector<double> failures = {}) {
  TaskRecord t;
  t.length_s = length;
  t.memory_mb = mem;
  t.priority = priority;
  t.failure_dates = std::move(failures);
  return t;
}

Trace one_job(JobStructure structure, std::vector<TaskRecord> tasks,
              double arrival = 0.0) {
  Trace trace;
  JobRecord job;
  job.id = 1;
  job.structure = structure;
  job.arrival_s = arrival;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    tasks[i].job_id = 1;
    tasks[i].index_in_job = static_cast<std::uint32_t>(i);
  }
  job.tasks = std::move(tasks);
  trace.jobs.push_back(std::move(job));
  trace.horizon_s = 10000.0;
  return trace;
}

StatsPredictor fixed_stats(double mnof, double mtbf) {
  return [mnof, mtbf](const TaskRecord&, int) {
    return core::FailureStats{mnof, mtbf};
  };
}

SimConfig default_config() {
  SimConfig cfg;
  cfg.seed = 1;
  return cfg;
}

TEST(Simulation, FailureFreeTaskHasOnlyCheckpointOverhead) {
  const auto trace =
      one_job(JobStructure::kSequentialTasks, {make_task(400.0, 160.0, 2)});
  const core::MnofPolicy policy;
  Simulation sim(default_config(), policy, fixed_stats(2.0, 200.0));
  const auto res = sim.run(trace);

  ASSERT_EQ(res.outcomes.size(), 1u);
  const auto& out = res.outcomes.front();
  EXPECT_EQ(res.incomplete_jobs, 0u);
  EXPECT_EQ(out.failures, 0u);
  EXPECT_GT(out.checkpoints, 0u);
  EXPECT_DOUBLE_EQ(out.workload_s, 400.0);
  EXPECT_DOUBLE_EQ(out.rollback_s, 0.0);
  EXPECT_DOUBLE_EQ(out.restart_s, 0.0);
  // Wall-clock = work + checkpoint costs exactly (no queueing at arrival).
  EXPECT_NEAR(out.wallclock_s, 400.0 + out.checkpoint_s, 1e-6);
  EXPECT_LT(out.wpr(), 1.0);
  EXPECT_GT(out.wpr(), 0.9);
}

TEST(Simulation, NoFailuresZeroMnofMeansNoCheckpoints) {
  const auto trace =
      one_job(JobStructure::kSequentialTasks, {make_task(400.0, 160.0, 2)});
  const core::MnofPolicy policy;
  Simulation sim(default_config(), policy, fixed_stats(0.0, 0.0));
  const auto res = sim.run(trace);
  ASSERT_EQ(res.outcomes.size(), 1u);
  EXPECT_EQ(res.outcomes.front().checkpoints, 0u);
  EXPECT_DOUBLE_EQ(res.outcomes.front().wallclock_s, 400.0);
  EXPECT_DOUBLE_EQ(res.outcomes.front().wpr(), 1.0);
}

TEST(Simulation, ConservationOfWallclock) {
  // Wall-clock = work + checkpoints + rollbacks + restarts + queueing for a
  // single ST job (no inter-task overlap).
  const auto trace = one_job(
      JobStructure::kSequentialTasks,
      {make_task(400.0, 160.0, 2, {100.0, 250.0})});
  const core::MnofPolicy policy;
  Simulation sim(default_config(), policy, fixed_stats(2.0, 150.0));
  const auto res = sim.run(trace);
  ASSERT_EQ(res.outcomes.size(), 1u);
  const auto& out = res.outcomes.front();
  EXPECT_EQ(out.failures, 2u);
  EXPECT_NEAR(out.wallclock_s,
              out.workload_s + out.checkpoint_s + out.rollback_s +
                  out.restart_s + out.queue_s,
              1e-6);
}

TEST(Simulation, FailureCausesRollbackAndRestartCost) {
  const auto trace = one_job(JobStructure::kSequentialTasks,
                             {make_task(400.0, 160.0, 2, {200.0})});
  const core::MnofPolicy policy;
  Simulation sim(default_config(), policy, fixed_stats(1.0, 200.0));
  const auto res = sim.run(trace);
  ASSERT_EQ(res.outcomes.size(), 1u);
  const auto& out = res.outcomes.front();
  EXPECT_EQ(out.failures, 1u);
  EXPECT_GT(out.rollback_s, 0.0);
  EXPECT_GT(out.restart_s, 0.0);
  EXPECT_EQ(res.total_failures, 1u);
}

TEST(Simulation, NoCheckpointPolicyLosesAllProgressOnFailure) {
  const auto trace = one_job(JobStructure::kSequentialTasks,
                             {make_task(400.0, 160.0, 2, {300.0})});
  const core::NoCheckpointPolicy policy;
  Simulation sim(default_config(), policy, fixed_stats(1.0, 200.0));
  const auto res = sim.run(trace);
  ASSERT_EQ(res.outcomes.size(), 1u);
  const auto& out = res.outcomes.front();
  EXPECT_EQ(out.checkpoints, 0u);
  // The kill at active time 300 destroys all 300 s of progress.
  EXPECT_NEAR(out.rollback_s, 300.0, 1.0);
}

TEST(Simulation, CheckpointBoundsRollbackLoss) {
  const auto trace = one_job(JobStructure::kSequentialTasks,
                             {make_task(400.0, 160.0, 2, {300.0})});
  const core::FixedIntervalPolicy policy(50.0);
  Simulation sim(default_config(), policy, fixed_stats(1.0, 200.0));
  const auto res = sim.run(trace);
  ASSERT_EQ(res.outcomes.size(), 1u);
  // With checkpoints every 50 s of work, at most ~50 s + one checkpoint
  // period can be lost.
  EXPECT_LT(res.outcomes.front().rollback_s, 55.0);
}

TEST(Simulation, SequentialTasksRunInOrder) {
  const auto trace = one_job(
      JobStructure::kSequentialTasks,
      {make_task(100.0, 160.0, 2), make_task(100.0, 160.0, 2)});
  const core::MnofPolicy policy;
  Simulation sim(default_config(), policy, fixed_stats(0.0, 0.0));
  const auto res = sim.run(trace);
  ASSERT_EQ(res.outcomes.size(), 1u);
  // Two sequential 100 s tasks -> 200 s wall-clock.
  EXPECT_NEAR(res.outcomes.front().wallclock_s, 200.0, 1e-6);
}

TEST(Simulation, BagOfTasksRunsInParallel) {
  const auto trace = one_job(
      JobStructure::kBagOfTasks,
      {make_task(100.0, 160.0, 2), make_task(100.0, 160.0, 2)});
  const core::MnofPolicy policy;
  Simulation sim(default_config(), policy, fixed_stats(0.0, 0.0));
  const auto res = sim.run(trace);
  ASSERT_EQ(res.outcomes.size(), 1u);
  // Parallel tasks complete together.
  EXPECT_NEAR(res.outcomes.front().wallclock_s, 100.0, 1e-6);
}

TEST(Simulation, MemoryPressureQueuesTasks) {
  // Cluster with one 1 GB VM; two 600 MB tasks must serialize.
  SimConfig cfg = default_config();
  cfg.cluster.hosts = 1;
  cfg.cluster.vms_per_host = 1;
  const auto trace = one_job(
      JobStructure::kBagOfTasks,
      {make_task(100.0, 600.0, 2), make_task(100.0, 600.0, 2)});
  const core::MnofPolicy policy;
  Simulation sim(cfg, policy, fixed_stats(0.0, 0.0));
  const auto res = sim.run(trace);
  ASSERT_EQ(res.outcomes.size(), 1u);
  EXPECT_NEAR(res.outcomes.front().wallclock_s, 200.0, 1e-6);
  EXPECT_NEAR(res.outcomes.front().queue_s, 100.0, 1e-6);
}

TEST(Simulation, OversizedTaskIsRecordedAsUnschedulable) {
  // A 2 GB demand can never fit a 1 GB VM: the task is rejected once at
  // admission (the old engine re-scanned it on every event, forever) and the
  // job completes with the rejection on record.
  SimConfig cfg = default_config();
  const auto trace = one_job(JobStructure::kSequentialTasks,
                             {make_task(100.0, 2048.0, 2)});
  const core::MnofPolicy policy;
  Simulation sim(cfg, policy, fixed_stats(0.0, 0.0));
  const auto res = sim.run(trace);
  ASSERT_EQ(res.outcomes.size(), 1u);
  EXPECT_EQ(res.incomplete_jobs, 0u);
  EXPECT_EQ(res.total_unschedulable, 1u);
  const auto& out = res.outcomes.front();
  EXPECT_EQ(out.unschedulable_tasks, 1u);
  EXPECT_DOUBLE_EQ(out.workload_s, 0.0);
  EXPECT_DOUBLE_EQ(out.wpr(), 0.0);
}

TEST(Simulation, UnschedulableTaskDoesNotBlockSiblingsOrSuccessors) {
  // BoT: the oversized member is dropped, the others run normally.
  {
    const auto trace = one_job(
        JobStructure::kBagOfTasks,
        {make_task(100.0, 160.0, 2), make_task(100.0, 4096.0, 2),
         make_task(100.0, 160.0, 2)});
    const core::MnofPolicy policy;
    Simulation sim(default_config(), policy, fixed_stats(0.0, 0.0));
    const auto res = sim.run(trace);
    ASSERT_EQ(res.outcomes.size(), 1u);
    const auto& out = res.outcomes.front();
    EXPECT_EQ(out.unschedulable_tasks, 1u);
    EXPECT_DOUBLE_EQ(out.workload_s, 200.0);
    EXPECT_NEAR(out.wallclock_s, 100.0, 1e-6);
  }
  // ST: an oversized head must not starve its successors.
  {
    const auto trace = one_job(
        JobStructure::kSequentialTasks,
        {make_task(100.0, 4096.0, 2), make_task(100.0, 160.0, 2)});
    const core::MnofPolicy policy;
    Simulation sim(default_config(), policy, fixed_stats(0.0, 0.0));
    const auto res = sim.run(trace);
    ASSERT_EQ(res.outcomes.size(), 1u);
    const auto& out = res.outcomes.front();
    EXPECT_EQ(out.unschedulable_tasks, 1u);
    EXPECT_DOUBLE_EQ(out.workload_s, 100.0);
    EXPECT_NEAR(out.wallclock_s, 100.0, 1e-6);
  }
}

TEST(Simulation, RunIsReusableAndWorkspacePoolingIsBitIdentical) {
  trace::GeneratorConfig gcfg;
  gcfg.seed = 31;
  gcfg.horizon_s = 3600.0;
  gcfg.arrival_rate = 0.08;
  const auto trace = trace::TraceGenerator(gcfg).generate();
  const core::MnofPolicy policy;

  const auto fresh = Simulation(default_config(), policy,
                                make_grouped_predictor(trace))
                         .run(trace);

  // Same Simulation object, run twice: the second replay must match the
  // first bit-for-bit (engine, RNG, cluster, and backends all reset).
  Simulation reused(default_config(), policy, make_grouped_predictor(trace));
  (void)reused.run(trace);
  const auto second = reused.run(trace);

  // Shared workspace, previously used by a different scenario.
  ReplayWorkspace ws;
  SimConfig other = default_config();
  other.placement = PlacementMode::kForceShared;
  (void)Simulation(other, policy, make_grouped_predictor(trace), &ws)
      .run(trace);
  const auto pooled = Simulation(default_config(), policy,
                                 make_grouped_predictor(trace), &ws)
                          .run(trace);

  ASSERT_EQ(fresh.outcomes.size(), second.outcomes.size());
  ASSERT_EQ(fresh.outcomes.size(), pooled.outcomes.size());
  EXPECT_EQ(fresh.events_dispatched, second.events_dispatched);
  EXPECT_EQ(fresh.events_dispatched, pooled.events_dispatched);
  for (std::size_t i = 0; i < fresh.outcomes.size(); ++i) {
    EXPECT_DOUBLE_EQ(fresh.outcomes[i].wallclock_s,
                     second.outcomes[i].wallclock_s);
    EXPECT_DOUBLE_EQ(fresh.outcomes[i].wallclock_s,
                     pooled.outcomes[i].wallclock_s);
    EXPECT_EQ(fresh.outcomes[i].checkpoints, pooled.outcomes[i].checkpoints);
    EXPECT_EQ(fresh.outcomes[i].failures, pooled.outcomes[i].failures);
  }
}

TEST(Simulation, DetectionDelayExtendsWallclock) {
  const auto mk_trace = [] {
    return one_job(JobStructure::kSequentialTasks,
                   {make_task(200.0, 160.0, 2, {100.0})});
  };
  const core::MnofPolicy policy;
  SimConfig instant = default_config();
  SimConfig delayed = default_config();
  delayed.detection_delay_s = 30.0;
  const auto r0 =
      Simulation(instant, policy, fixed_stats(1.0, 100.0)).run(mk_trace());
  const auto r1 =
      Simulation(delayed, policy, fixed_stats(1.0, 100.0)).run(mk_trace());
  ASSERT_EQ(r0.outcomes.size(), 1u);
  ASSERT_EQ(r1.outcomes.size(), 1u);
  EXPECT_NEAR(r1.outcomes.front().wallclock_s,
              r0.outcomes.front().wallclock_s + 30.0, 1.0);
}

TEST(Simulation, PriorityChangeTriggersAdaptiveReplanning) {
  // Priority flips mid-task; adaptive and static controllers must diverge in
  // checkpoint counts when the new stats differ wildly.
  auto mk_trace = [] {
    auto task = make_task(1000.0, 160.0, 2);
    task.priority_change_time = 500.0;
    task.new_priority = 10;
    return one_job(JobStructure::kSequentialTasks, {task});
  };
  // Predictor keyed on current priority: calm for p2, stormy for p10.
  auto predictor = [](const TaskRecord&, int current_priority) {
    return current_priority == 10 ? core::FailureStats{20.0, 40.0}
                                  : core::FailureStats{1.0, 800.0};
  };
  const core::MnofPolicy policy;
  SimConfig adaptive = default_config();
  adaptive.adaptation = core::AdaptationMode::kAdaptive;
  SimConfig static_cfg = default_config();
  static_cfg.adaptation = core::AdaptationMode::kStatic;

  const auto ra = Simulation(adaptive, policy, predictor).run(mk_trace());
  const auto rs = Simulation(static_cfg, policy, predictor).run(mk_trace());
  ASSERT_EQ(ra.outcomes.size(), 1u);
  ASSERT_EQ(rs.outcomes.size(), 1u);
  // Adaptive reacts to the 20x MNOF by checkpointing far more often.
  EXPECT_GT(ra.outcomes.front().checkpoints,
            rs.outcomes.front().checkpoints + 5);
}

TEST(Simulation, PlacementModesChangeDeviceCosts) {
  const auto mk_trace = [] {
    return one_job(JobStructure::kSequentialTasks,
                   {make_task(400.0, 160.0, 2, {200.0})});
  };
  const core::MnofPolicy policy;
  SimConfig local = default_config();
  local.placement = PlacementMode::kForceLocal;
  SimConfig shared = default_config();
  shared.placement = PlacementMode::kForceShared;
  const auto rl =
      Simulation(local, policy, fixed_stats(1.0, 200.0)).run(mk_trace());
  const auto rs =
      Simulation(shared, policy, fixed_stats(1.0, 200.0)).run(mk_trace());
  ASSERT_EQ(rl.outcomes.size(), 1u);
  ASSERT_EQ(rs.outcomes.size(), 1u);
  // Restart from local ramdisk pays migration type A (3.22 s at 160 MB) vs
  // type B (1.45 s).
  EXPECT_NEAR(rl.outcomes.front().restart_s, 3.22, 1e-6);
  EXPECT_NEAR(rs.outcomes.front().restart_s, 1.45, 1e-6);
}

TEST(Simulation, DeterministicAcrossRuns) {
  trace::GeneratorConfig gcfg;
  gcfg.seed = 21;
  gcfg.horizon_s = 3600.0;
  gcfg.arrival_rate = 0.05;
  const auto trace = trace::TraceGenerator(gcfg).generate();
  const core::MnofPolicy policy;
  const auto r1 = Simulation(default_config(), policy,
                             make_grouped_predictor(trace))
                      .run(trace);
  const auto r2 = Simulation(default_config(), policy,
                             make_grouped_predictor(trace))
                      .run(trace);
  ASSERT_EQ(r1.outcomes.size(), r2.outcomes.size());
  for (std::size_t i = 0; i < r1.outcomes.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.outcomes[i].wallclock_s, r2.outcomes[i].wallclock_s);
    EXPECT_EQ(r1.outcomes[i].checkpoints, r2.outcomes[i].checkpoints);
  }
}

TEST(Simulation, WprIsAlwaysInUnitInterval) {
  trace::GeneratorConfig gcfg;
  gcfg.seed = 23;
  gcfg.horizon_s = 7200.0;
  gcfg.arrival_rate = 0.05;
  const auto trace = trace::TraceGenerator(gcfg).generate();
  const core::MnofPolicy policy;
  Simulation sim(default_config(), policy, make_grouped_predictor(trace));
  const auto res = sim.run(trace);
  ASSERT_GT(res.outcomes.size(), 0u);
  for (const auto& out : res.outcomes) {
    EXPECT_GT(out.wpr(), 0.0);
    EXPECT_LE(out.wpr(), 1.0 + 1e-9);
  }
}

TEST(Simulation, RequiresPredictor) {
  const core::MnofPolicy policy;
  EXPECT_THROW(Simulation(default_config(), policy, nullptr),
               std::invalid_argument);
}

TEST(Simulation, OracleBeatsWrongStatsOnAverage) {
  trace::GeneratorConfig gcfg;
  gcfg.seed = 29;
  gcfg.horizon_s = 14400.0;
  gcfg.arrival_rate = 0.05;
  const auto trace = trace::TraceGenerator(gcfg).generate();
  const core::MnofPolicy policy;
  const auto oracle =
      Simulation(default_config(), policy, make_oracle_predictor()).run(trace);
  // Deliberately terrible stats: hugely overestimated MNOF wastes time on
  // excess checkpoints.
  const auto wrong =
      Simulation(default_config(), policy, fixed_stats(500.0, 1.0)).run(trace);
  ASSERT_GT(oracle.outcomes.size(), 0u);
  EXPECT_GT(oracle.average_wpr(), wrong.average_wpr());
}

}  // namespace
}  // namespace cloudcr::sim
