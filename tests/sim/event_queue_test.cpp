#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace cloudcr::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, StableAtEqualTimestamps) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().second();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.schedule(1.0, [&] { ++fired; });
  q.schedule(2.0, [&] { ++fired; });
  EXPECT_TRUE(q.cancel(id));
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelReturnsFalseTwice) {
  EventQueue q;
  const EventId id = q.schedule(1.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
  EXPECT_FALSE(q.cancel(9999));
}

TEST(EventQueue, SizeCountsLiveEventsOnly) {
  EventQueue q;
  const EventId a = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId a = q.schedule(1.0, [] {});
  q.schedule(5.0, [] {});
  q.cancel(a);
  EXPECT_DOUBLE_EQ(q.next_time(), 5.0);
}

TEST(EventQueue, EmptyThrowsOnAccess) {
  EventQueue q;
  EXPECT_THROW((void)q.next_time(), std::logic_error);
  EXPECT_THROW((void)q.pop(), std::logic_error);
}

TEST(EventQueue, PopReturnsTimestamp) {
  EventQueue q;
  q.schedule(7.5, [] {});
  const auto [time, fn] = q.pop();
  EXPECT_DOUBLE_EQ(time, 7.5);
}

TEST(EventQueue, ScheduleDuringDrainIsPicked) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&] {
    order.push_back(1);
    q.schedule(2.0, [&] { order.push_back(2); });
  });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

}  // namespace
}  // namespace cloudcr::sim
