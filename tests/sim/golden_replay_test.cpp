// Golden-result harness: the replay engine's observable output is pinned
// byte-for-byte against fixtures captured from the pre-overhaul engine.
//
// The paired-comparison methodology (same kill sequence under every policy)
// only survives hot-path refactors if placement order, event ordering, RNG
// consumption, and accounting all stay bit-identical. Each fixture is one
// pinned ScenarioSpec rendered to a deterministic text document (summary
// counters + one JSON line per JobOutcome, max_digits10 doubles). Any
// engine change that alters a single bit of any outcome fails here.
//
// Refreshing (only when an output change is *intended* and reviewed):
//   CLOUDCR_UPDATE_GOLDEN=1 ./sim_golden_replay_test

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/runner.hpp"
#include "metrics/export.hpp"

#ifndef CLOUDCR_GOLDEN_DIR
#error "CLOUDCR_GOLDEN_DIR must be defined by the build"
#endif

namespace cloudcr {
namespace {

struct GoldenCase {
  const char* file;  // fixture name under tests/golden/
  api::ScenarioSpec spec;
};

api::ScenarioSpec base_spec(const char* name, std::uint64_t trace_seed) {
  api::ScenarioSpec spec;
  spec.name = name;
  spec.trace.seed = trace_seed;
  spec.trace.horizon_s = 2.0 * 3600.0;
  spec.trace.arrival_rate = 0.08;
  return spec;
}

std::vector<GoldenCase> golden_cases() {
  std::vector<GoldenCase> cases;

  {
    GoldenCase c{"replay_f3_auto_adaptive.txt",
                 base_spec("f3_auto_adaptive", 101)};
    cases.push_back(c);
  }
  {
    GoldenCase c{"replay_none_shared_nfs_delay.txt",
                 base_spec("none_shared_nfs_delay", 101)};
    c.spec.policy = "none";
    c.spec.placement = sim::PlacementMode::kForceShared;
    c.spec.shared_device = storage::DeviceKind::kSharedNfs;
    c.spec.detection_delay_s = 30.0;
    cases.push_back(c);
  }
  {
    GoldenCase c{"replay_young_local_static_prio.txt",
                 base_spec("young_local_static_prio", 202)};
    c.spec.policy = "young";
    c.spec.placement = sim::PlacementMode::kForceLocal;
    c.spec.adaptation = core::AdaptationMode::kStatic;
    c.spec.trace.priority_change_midway = true;
    cases.push_back(c);
  }
  {
    GoldenCase c{"replay_fixed_noise_full.txt",
                 base_spec("fixed_noise_full", 303)};
    c.spec.policy = "fixed:45";
    c.spec.predictor = "oracle";
    c.spec.estimation = api::EstimationSource::kFull;
    c.spec.storage_noise = 0.10;
    c.spec.sim_seed = 77;
    cases.push_back(c);
  }
  {
    GoldenCase c{"replay_daly_restricted.txt",
                 base_spec("daly_restricted", 404)};
    c.spec.policy = "daly";
    c.spec.trace.replay_max_task_length_s = 6.0 * 3600.0;
    c.spec.trace.long_service_fraction = 0.08;
    cases.push_back(c);
  }
  {
    GoldenCase c{"replay_small_cluster_pressure.txt",
                 base_spec("small_cluster_pressure", 505)};
    c.spec.cluster.hosts = 4;
    c.spec.cluster.vms_per_host = 2;
    c.spec.trace.arrival_rate = 0.05;
    cases.push_back(c);
  }

  return cases;
}

/// Renders everything the engine computes into one deterministic document.
/// events_dispatched is deliberately absent: it is an engine diagnostic, not
/// a paper output, and the hot path is free to elide bookkeeping events that
/// cannot influence results.
std::string render(const api::RunArtifact& artifact) {
  std::ostringstream os;
  const sim::SimResult& r = artifact.result;
  os << "scenario " << artifact.spec.name << "\n"
     << "jobs=" << artifact.trace_jobs << " tasks=" << artifact.trace_tasks
     << "\n"
     << "makespan=" << metrics::json_double(r.makespan_s)
     << " incomplete=" << r.incomplete_jobs
     << " checkpoints=" << r.total_checkpoints
     << " failures=" << r.total_failures << "\n";
  for (const auto& outcome : r.outcomes) {
    metrics::write_outcome_json(os, outcome);
    os << "\n";
  }
  return os.str();
}

std::string golden_path(const char* file) {
  return std::string(CLOUDCR_GOLDEN_DIR) + "/" + file;
}

bool update_mode() {
  const char* env = std::getenv("CLOUDCR_UPDATE_GOLDEN");
  return env != nullptr && *env != '\0' && *env != '0';
}

class GoldenReplay : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenReplay, MatchesFixtureByteForByte) {
  const GoldenCase& c = GetParam();
  const std::string actual = render(api::run_scenario(c.spec));
  const std::string path = golden_path(c.file);

  if (update_mode()) {
    std::ofstream os(path, std::ios::binary);
    ASSERT_TRUE(os) << "cannot write " << path;
    os << actual;
    GTEST_SKIP() << "golden updated: " << path;
  }

  std::ifstream is(path, std::ios::binary);
  ASSERT_TRUE(is) << "missing fixture " << path
                  << " (run with CLOUDCR_UPDATE_GOLDEN=1 to create)";
  std::ostringstream expected;
  expected << is.rdbuf();
  EXPECT_EQ(expected.str(), actual)
      << "replay output diverged from the pinned engine behavior ("
      << c.file << ")";
}

INSTANTIATE_TEST_SUITE_P(Pinned, GoldenReplay,
                         ::testing::ValuesIn(golden_cases()),
                         [](const auto& info) {
                           return std::string(info.param.spec.name);
                         });

// Sharded replay against the SAME fixtures: shards is a wall-time knob,
// never an output knob, so shards=2 must reproduce every pinned byte the
// serial engine produces (the shard-count-invariance house property, at
// its strictest — against fixtures captured before sharding existed).
class GoldenReplaySharded : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenReplaySharded, Shards2MatchesFixtureByteForByte) {
  if (update_mode()) {
    GTEST_SKIP() << "fixtures are refreshed by the serial suite only";
  }
  GoldenCase c = GetParam();
  c.spec.shards = 2;
  const std::string actual = render(api::run_scenario(c.spec));
  const std::string path = golden_path(c.file);

  std::ifstream is(path, std::ios::binary);
  ASSERT_TRUE(is) << "missing fixture " << path
                  << " (run with CLOUDCR_UPDATE_GOLDEN=1 to create)";
  std::ostringstream expected;
  expected << is.rdbuf();
  EXPECT_EQ(expected.str(), actual)
      << "sharded replay diverged from the serial fixture (" << c.file
      << ")";
}

INSTANTIATE_TEST_SUITE_P(Pinned, GoldenReplaySharded,
                         ::testing::ValuesIn(golden_cases()),
                         [](const auto& info) {
                           return std::string(info.param.spec.name);
                         });

}  // namespace
}  // namespace cloudcr
