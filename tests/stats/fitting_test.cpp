#include "stats/fitting.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "stats/distributions.hpp"
#include "stats/rng.hpp"

namespace cloudcr::stats {
namespace {

// ---------------------------------------------------------------------------
// Parameter-recovery properties: fitting samples drawn from a known family
// must recover its parameters (the core MLE correctness property).
// ---------------------------------------------------------------------------

TEST(FitExponential, RecoversLambda) {
  Rng rng(11);
  const double lambda = 0.00423445;  // the paper's fitted Google rate
  const Exponential d(lambda);
  const auto fit = fit_exponential(d.sample_n(rng, 50000));
  ASSERT_NE(fit.dist, nullptr);
  const auto* e = dynamic_cast<const Exponential*>(fit.dist.get());
  ASSERT_NE(e, nullptr);
  EXPECT_NEAR(e->lambda(), lambda, 0.05 * lambda);
  EXPECT_LT(fit.ks_statistic, 0.02);
}

TEST(FitNormal, RecoversMuSigma) {
  Rng rng(13);
  const Normal d(42.0, 7.0);
  const auto fit = fit_normal(d.sample_n(rng, 50000));
  const auto* n = dynamic_cast<const Normal*>(fit.dist.get());
  ASSERT_NE(n, nullptr);
  EXPECT_NEAR(n->mu(), 42.0, 0.2);
  EXPECT_NEAR(n->sigma(), 7.0, 0.2);
}

TEST(FitLaplace, RecoversMuB) {
  Rng rng(17);
  const Laplace d(-3.0, 2.5);
  const auto fit = fit_laplace(d.sample_n(rng, 50000));
  const auto* l = dynamic_cast<const Laplace*>(fit.dist.get());
  ASSERT_NE(l, nullptr);
  EXPECT_NEAR(l->mu(), -3.0, 0.1);
  EXPECT_NEAR(l->b(), 2.5, 0.1);
}

TEST(FitPareto, RecoversAlpha) {
  Rng rng(19);
  const Pareto d(1.3, 50.0);
  const auto fit = fit_pareto(d.sample_n(rng, 50000));
  const auto* p = dynamic_cast<const Pareto*>(fit.dist.get());
  ASSERT_NE(p, nullptr);
  EXPECT_NEAR(p->alpha(), 1.3, 0.05);
  EXPECT_NEAR(p->xm(), 50.0, 1.0);
}

TEST(FitGeometric, RecoversP) {
  Rng rng(23);
  const Geometric d(0.2);
  const auto fit = fit_geometric(d.sample_n(rng, 50000));
  const auto* g = dynamic_cast<const Geometric*>(fit.dist.get());
  ASSERT_NE(g, nullptr);
  EXPECT_NEAR(g->p(), 0.2, 0.01);
}

TEST(FitWeibull, RecoversShapeScale) {
  Rng rng(29);
  const Weibull d(1.7, 300.0);
  const auto fit = fit_weibull(d.sample_n(rng, 50000));
  const auto* w = dynamic_cast<const Weibull*>(fit.dist.get());
  ASSERT_NE(w, nullptr);
  EXPECT_NEAR(w->shape(), 1.7, 0.05);
  EXPECT_NEAR(w->scale(), 300.0, 5.0);
}

TEST(FitLogNormal, RecoversMuSigma) {
  Rng rng(31);
  const LogNormal d(5.5, 0.9);
  const auto fit = fit_lognormal(d.sample_n(rng, 50000));
  const auto* l = dynamic_cast<const LogNormal*>(fit.dist.get());
  ASSERT_NE(l, nullptr);
  EXPECT_NEAR(l->mu(), 5.5, 0.05);
  EXPECT_NEAR(l->sigma(), 0.9, 0.05);
}

// ---------------------------------------------------------------------------
// Model selection (the Fig 5 scenario).
// ---------------------------------------------------------------------------

TEST(FitAll, ExponentialDataSelectsExponential) {
  Rng rng(37);
  const Exponential d(0.004);
  const auto fits = fit_all(d.sample_n(rng, 20000));
  ASSERT_FALSE(fits.empty());
  EXPECT_EQ(fits.front().family, "exponential");
}

TEST(FitAll, ParetoDataSelectsPareto) {
  Rng rng(41);
  const Pareto d(1.1, 100.0);
  const auto fits = fit_all(d.sample_n(rng, 20000));
  ASSERT_FALSE(fits.empty());
  EXPECT_EQ(fits.front().family, "pareto");
}

TEST(FitAll, ResultsSortedByKs) {
  Rng rng(43);
  const Exponential d(0.01);
  const auto fits = fit_all(d.sample_n(rng, 5000));
  for (std::size_t i = 1; i < fits.size(); ++i) {
    EXPECT_LE(fits[i - 1].ks_statistic, fits[i].ks_statistic);
  }
}

TEST(FitAll, CoversTheFigure5Families) {
  Rng rng(47);
  const Exponential d(0.01);
  const auto fits = fit_all(d.sample_n(rng, 2000));
  ASSERT_EQ(fits.size(), 5u);
  std::set<std::string> families;
  for (const auto& f : fits) families.insert(f.family);
  EXPECT_TRUE(families.contains("exponential"));
  EXPECT_TRUE(families.contains("geometric"));
  EXPECT_TRUE(families.contains("laplace"));
  EXPECT_TRUE(families.contains("normal"));
  EXPECT_TRUE(families.contains("pareto"));
}

// ---------------------------------------------------------------------------
// Goodness-of-fit measures.
// ---------------------------------------------------------------------------

TEST(KsStatistic, ZeroForPerfectStep) {
  // KS of a distribution against its own large sample should be small...
  Rng rng(53);
  const Uniform d(0.0, 1.0);
  const auto samples = d.sample_n(rng, 20000);
  EXPECT_LT(ks_statistic(samples, d), 0.02);
}

TEST(KsStatistic, LargeForWrongModel) {
  Rng rng(59);
  const Exponential data(0.001);
  const auto samples = data.sample_n(rng, 5000);
  const Normal wrong(0.0, 1.0);
  EXPECT_GT(ks_statistic(samples, wrong), 0.5);
}

TEST(KsStatistic, BoundedByOne) {
  const Uniform d(100.0, 101.0);
  const std::vector<double> samples{0.0, 1.0, 2.0};
  const double ks = ks_statistic(samples, d);
  EXPECT_GT(ks, 0.9);
  EXPECT_LE(ks, 1.0);
}

TEST(LogLikelihood, HigherForTrueModel) {
  Rng rng(61);
  const Exponential true_model(0.01);
  const Exponential wrong_model(1.0);
  const auto samples = true_model.sample_n(rng, 2000);
  EXPECT_GT(log_likelihood(samples, true_model),
            log_likelihood(samples, wrong_model));
}

TEST(LogLikelihood, MinusInfinityOutsideSupport) {
  const Pareto d(2.0, 10.0);
  const std::vector<double> samples{5.0};  // below xm
  EXPECT_TRUE(std::isinf(log_likelihood(samples, d)));
  EXPECT_LT(log_likelihood(samples, d), 0.0);
}

TEST(Aic, PenalizesParameterCount) {
  Rng rng(67);
  const Exponential d(0.01);
  const auto samples = d.sample_n(rng, 5000);
  const auto exp_fit = fit_exponential(samples);
  // AIC = 2k - 2logL with k=1 for exponential.
  EXPECT_NEAR(exp_fit.aic, 2.0 - 2.0 * exp_fit.log_likelihood, 1e-9);
}

TEST(Fitting, RejectsEmptyInput) {
  EXPECT_THROW(fit_exponential({}), std::invalid_argument);
  EXPECT_THROW(fit_normal({}), std::invalid_argument);
  EXPECT_THROW(fit_pareto({}), std::invalid_argument);
}

TEST(Fitting, DegenerateInputsFailGracefully) {
  // All-equal samples: normal/laplace fits have zero scale -> failed fit.
  const std::vector<double> flat(100, 5.0);
  EXPECT_EQ(fit_normal(flat).dist, nullptr);
  EXPECT_EQ(fit_laplace(flat).dist, nullptr);
  EXPECT_EQ(fit_pareto(flat).dist, nullptr);
  // Failed fits carry worst-case GOF values.
  EXPECT_EQ(fit_normal(flat).ks_statistic, 1.0);
}

}  // namespace
}  // namespace cloudcr::stats
