#include "stats/special.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cloudcr::stats {
namespace {

TEST(RegularizedGammaP, KnownValues) {
  // P(1, x) = 1 - e^{-x}.
  for (double x : {0.1, 1.0, 5.0, 20.0}) {
    EXPECT_NEAR(regularized_gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-12);
  }
  // P(2, x) = 1 - e^{-x}(1 + x).
  for (double x : {0.5, 2.0, 10.0}) {
    EXPECT_NEAR(regularized_gamma_p(2.0, x), 1.0 - std::exp(-x) * (1.0 + x),
                1e-12);
  }
}

TEST(RegularizedGammaP, Boundaries) {
  EXPECT_DOUBLE_EQ(regularized_gamma_p(3.0, 0.0), 0.0);
  EXPECT_NEAR(regularized_gamma_p(3.0, 1e6), 1.0, 1e-12);
  EXPECT_THROW(regularized_gamma_p(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(regularized_gamma_p(1.0, -1.0), std::invalid_argument);
}

TEST(RegularizedGammaP, StableForExtremeArguments) {
  // The regime that previously produced NaN: x astronomically larger than a.
  EXPECT_NEAR(regularized_gamma_p(5.0, 7.0e6), 1.0, 1e-12);
  EXPECT_NEAR(regularized_gamma_p(4000.0, 1.0e9), 1.0, 1e-12);
  // And the opposite corner: x tiny relative to a.
  EXPECT_NEAR(regularized_gamma_p(4000.0, 1.0), 0.0, 1e-12);
}

TEST(RegularizedGammaP, MonotoneInX) {
  double prev = -1.0;
  for (double x = 0.0; x <= 30.0; x += 0.5) {
    const double p = regularized_gamma_p(7.5, x);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(RegularizedGammaP, MedianNearAForLargeA) {
  // For large a, P(a, a) ~ 0.5 (within O(1/sqrt(a))).
  EXPECT_NEAR(regularized_gamma_p(1000.0, 1000.0), 0.5, 0.02);
}

TEST(ErlangCdf, MatchesClosedFormForSmallK) {
  // Erlang(1, r) is exponential.
  EXPECT_NEAR(erlang_cdf(1, 0.01, 100.0), 1.0 - std::exp(-1.0), 1e-12);
  // Erlang(2, r): 1 - e^{-rt}(1 + rt).
  const double rt = 0.5 * 6.0;
  EXPECT_NEAR(erlang_cdf(2, 0.5, 6.0), 1.0 - std::exp(-rt) * (1.0 + rt),
              1e-12);
}

TEST(ErlangCdf, Validation) {
  EXPECT_THROW(erlang_cdf(0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(erlang_cdf(1, 0.0, 1.0), std::invalid_argument);
  EXPECT_DOUBLE_EQ(erlang_cdf(3, 1.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(erlang_cdf(3, 1.0, -5.0), 0.0);
}

TEST(ErlangCdf, MonotoneInKAndT) {
  // More required events -> lower probability by time t.
  for (int k = 1; k < 10; ++k) {
    EXPECT_GT(erlang_cdf(k, 0.1, 50.0), erlang_cdf(k + 1, 0.1, 50.0));
  }
  // Longer horizon -> higher probability.
  double prev = 0.0;
  for (double t = 10.0; t <= 200.0; t += 10.0) {
    const double p = erlang_cdf(4, 0.05, t);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

}  // namespace
}  // namespace cloudcr::stats
