#include "stats/empirical.hpp"

#include <gtest/gtest.h>

#include "stats/distributions.hpp"
#include "stats/rng.hpp"

namespace cloudcr::stats {
namespace {

TEST(EmpiricalCdf, RejectsEmptyInput) {
  EXPECT_THROW(EmpiricalCdf({}), std::invalid_argument);
}

TEST(EmpiricalCdf, SingleSample) {
  const EmpiricalCdf e({5.0});
  EXPECT_DOUBLE_EQ(e.cdf(4.9), 0.0);
  EXPECT_DOUBLE_EQ(e.cdf(5.0), 1.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.0), 5.0);
  EXPECT_DOUBLE_EQ(e.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(e.variance(), 0.0);
}

TEST(EmpiricalCdf, StepFunctionValues) {
  const EmpiricalCdf e({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(e.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(e.cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(e.cdf(2.5), 0.5);
  EXPECT_DOUBLE_EQ(e.cdf(4.0), 1.0);
  EXPECT_DOUBLE_EQ(e.cdf(100.0), 1.0);
}

TEST(EmpiricalCdf, HandlesDuplicates) {
  const EmpiricalCdf e({2.0, 2.0, 2.0, 5.0});
  EXPECT_DOUBLE_EQ(e.cdf(2.0), 0.75);
  EXPECT_DOUBLE_EQ(e.cdf(1.9), 0.0);
}

TEST(EmpiricalCdf, UnsortedInputIsSorted) {
  const EmpiricalCdf e({9.0, 1.0, 5.0});
  EXPECT_DOUBLE_EQ(e.min(), 1.0);
  EXPECT_DOUBLE_EQ(e.max(), 9.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.5), 5.0);
}

TEST(EmpiricalCdf, QuantileInterpolates) {
  const EmpiricalCdf e({0.0, 10.0});
  EXPECT_DOUBLE_EQ(e.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.25), 2.5);
}

TEST(EmpiricalCdf, QuantileRejectsOutOfRange) {
  const EmpiricalCdf e({1.0, 2.0});
  EXPECT_THROW((void)e.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW((void)e.quantile(1.1), std::invalid_argument);
}

TEST(EmpiricalCdf, MeanAndVariance) {
  const EmpiricalCdf e({2.0, 4.0, 6.0, 8.0});
  EXPECT_DOUBLE_EQ(e.mean(), 5.0);
  // Unbiased: ((9+1+1+9)/3) = 20/3
  EXPECT_NEAR(e.variance(), 20.0 / 3.0, 1e-12);
}

TEST(EmpiricalCdf, ConvergesToTrueCdf) {
  Rng rng(5);
  const Exponential d(0.01);
  const EmpiricalCdf e(d.sample_n(rng, 50000));
  for (double x : {10.0, 50.0, 100.0, 300.0}) {
    EXPECT_NEAR(e.cdf(x), d.cdf(x), 0.01) << "at x=" << x;
  }
}

TEST(CdfSeries, SpansRangeAndIsMonotone) {
  const EmpiricalCdf e({1.0, 2.0, 3.0, 10.0});
  const auto series = cdf_series(e, 50);
  ASSERT_EQ(series.size(), 50u);
  EXPECT_DOUBLE_EQ(series.front().x, 1.0);
  EXPECT_DOUBLE_EQ(series.back().x, 10.0);
  EXPECT_DOUBLE_EQ(series.back().p, 1.0);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_LE(series[i - 1].p, series[i].p);
    EXPECT_LT(series[i - 1].x, series[i].x);
  }
}

TEST(CdfSeries, ExplicitRange) {
  const EmpiricalCdf e({5.0});
  const auto series = cdf_series(e, 3, 0.0, 10.0);
  ASSERT_EQ(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series[0].x, 0.0);
  EXPECT_DOUBLE_EQ(series[1].x, 5.0);
  EXPECT_DOUBLE_EQ(series[2].x, 10.0);
  EXPECT_DOUBLE_EQ(series[0].p, 0.0);
  EXPECT_DOUBLE_EQ(series[2].p, 1.0);
}

TEST(CdfSeries, RejectsTooFewPoints) {
  const EmpiricalCdf e({1.0});
  EXPECT_THROW(cdf_series(e, 1), std::invalid_argument);
}

}  // namespace
}  // namespace cloudcr::stats
