#include "stats/distributions.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

namespace cloudcr::stats {
namespace {

// ---------------------------------------------------------------------------
// Generic distribution properties, run over every family (TEST_P sweep).
// ---------------------------------------------------------------------------

struct DistCase {
  const char* label;
  std::shared_ptr<const Distribution> dist;
  double q_lo;  // support probe below which cdf should be ~0
};

class DistributionProperty : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistributionProperty, CdfIsMonotoneNondecreasing) {
  const auto& d = *GetParam().dist;
  double prev = -1.0;
  for (double p = 0.02; p <= 0.98; p += 0.02) {
    const double x = d.quantile(p);
    const double c = d.cdf(x);
    EXPECT_GE(c + 1e-12, prev) << "at p=" << p;
    prev = c;
  }
}

TEST_P(DistributionProperty, QuantileInvertsCdf) {
  const auto& d = *GetParam().dist;
  for (double p = 0.05; p <= 0.95; p += 0.05) {
    const double x = d.quantile(p);
    EXPECT_NEAR(d.cdf(x), p, 0.02) << "at p=" << p;
  }
}

TEST_P(DistributionProperty, PdfIsNonNegative) {
  const auto& d = *GetParam().dist;
  for (double p = 0.05; p <= 0.95; p += 0.05) {
    EXPECT_GE(d.pdf(d.quantile(p)), 0.0);
  }
}

TEST_P(DistributionProperty, SampleMeanMatchesAnalyticMean) {
  const auto& d = *GetParam().dist;
  if (!std::isfinite(d.mean())) GTEST_SKIP() << "infinite mean";
  if (!std::isfinite(d.variance())) {
    // Infinite variance: the sample mean converges too slowly (heavy tail)
    // for a fixed-sample assertion to be meaningful.
    GTEST_SKIP() << "infinite variance";
  }
  Rng rng(99);
  constexpr int kN = 200000;
  double acc = 0.0;
  for (int i = 0; i < kN; ++i) acc += d.sample(rng);
  const double tolerance =
      0.05 * std::max(1.0, std::abs(d.mean())) +
      (std::isfinite(d.variance()) ? 4.0 * std::sqrt(d.variance() / kN) : 1.0);
  EXPECT_NEAR(acc / kN, d.mean(), tolerance);
}

TEST_P(DistributionProperty, SamplesLieInSupport) {
  const auto& d = *GetParam().dist;
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    const double x = d.sample(rng);
    // CDF at a sampled point must be in (0, 1]; below-support draws would
    // give cdf == 0 with pdf == 0.
    EXPECT_GT(d.cdf(x) + d.pdf(x), 0.0);
  }
}

TEST_P(DistributionProperty, CloneBehavesIdentically) {
  const auto& d = *GetParam().dist;
  const auto copy = d.clone();
  for (double p = 0.1; p <= 0.9; p += 0.1) {
    EXPECT_DOUBLE_EQ(copy->quantile(p), d.quantile(p));
  }
  EXPECT_EQ(copy->name(), d.name());
}

TEST_P(DistributionProperty, EmpiricalCdfConvergesToModelCdf) {
  const auto& d = *GetParam().dist;
  Rng rng(31);
  constexpr int kN = 50000;
  const double x_med = d.quantile(0.5);
  int below = 0;
  for (int i = 0; i < kN; ++i) {
    if (d.sample(rng) <= x_med) ++below;
  }
  EXPECT_NEAR(static_cast<double>(below) / kN, 0.5, 0.02);
}

DistCase cases[] = {
    {"exponential", std::make_shared<Exponential>(0.00423445), 0.0},
    {"exponential_fast", std::make_shared<Exponential>(2.5), 0.0},
    {"pareto_heavy", std::make_shared<Pareto>(1.2, 100.0), 100.0},
    {"pareto_light", std::make_shared<Pareto>(3.5, 1.0), 1.0},
    {"weibull_sub", std::make_shared<Weibull>(0.7, 200.0), 0.0},
    {"weibull_super", std::make_shared<Weibull>(2.0, 50.0), 0.0},
    {"normal", std::make_shared<Normal>(10.0, 3.0), -1e9},
    {"lognormal", std::make_shared<LogNormal>(6.0, 1.0), 0.0},
    {"laplace", std::make_shared<Laplace>(5.0, 2.0), -1e9},
    {"uniform", std::make_shared<Uniform>(2.0, 8.0), 2.0},
};

INSTANTIATE_TEST_SUITE_P(AllFamilies, DistributionProperty,
                         ::testing::ValuesIn(cases),
                         [](const auto& param_info) {
                           return std::string(param_info.param.label);
                         });

// ---------------------------------------------------------------------------
// Family-specific facts.
// ---------------------------------------------------------------------------

TEST(Exponential, MatchesClosedForms) {
  const Exponential d(0.5);
  EXPECT_DOUBLE_EQ(d.mean(), 2.0);
  EXPECT_DOUBLE_EQ(d.variance(), 4.0);
  EXPECT_NEAR(d.cdf(2.0), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_NEAR(d.pdf(0.0), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(d.cdf(-1.0), 0.0);
}

TEST(Exponential, RejectsNonPositiveRate) {
  EXPECT_THROW(Exponential(0.0), std::invalid_argument);
  EXPECT_THROW(Exponential(-1.0), std::invalid_argument);
}

TEST(Pareto, HeavyTailHasInfiniteMoments) {
  const Pareto d(0.9, 10.0);
  EXPECT_TRUE(std::isinf(d.mean()));
  const Pareto d2(1.5, 10.0);
  EXPECT_TRUE(std::isfinite(d2.mean()));
  EXPECT_TRUE(std::isinf(d2.variance()));
}

TEST(Pareto, SupportStartsAtXm) {
  const Pareto d(2.0, 42.0);
  EXPECT_DOUBLE_EQ(d.cdf(41.9), 0.0);
  EXPECT_DOUBLE_EQ(d.pdf(41.9), 0.0);
  EXPECT_GT(d.pdf(42.1), 0.0);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(d.sample(rng), 42.0);
}

TEST(Pareto, MeanClosedForm) {
  const Pareto d(3.0, 6.0);
  EXPECT_DOUBLE_EQ(d.mean(), 9.0);  // alpha*xm/(alpha-1)
}

TEST(Weibull, ShapeOneIsExponential) {
  const Weibull w(1.0, 100.0);
  const Exponential e(0.01);
  for (double x : {1.0, 50.0, 100.0, 500.0}) {
    EXPECT_NEAR(w.cdf(x), e.cdf(x), 1e-12);
  }
}

TEST(Normal, SymmetryAboutMean) {
  const Normal d(5.0, 2.0);
  EXPECT_NEAR(d.cdf(5.0), 0.5, 1e-12);
  EXPECT_NEAR(d.cdf(3.0) + d.cdf(7.0), 1.0, 1e-12);
  EXPECT_NEAR(d.quantile(0.5), 5.0, 1e-9);
}

TEST(Normal, QuantileAccuracy) {
  const Normal d(0.0, 1.0);
  // Known standard normal quantiles.
  EXPECT_NEAR(d.quantile(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(d.quantile(0.84134), 1.0, 1e-3);
  EXPECT_NEAR(d.quantile(0.5), 0.0, 1e-9);
}

TEST(LogNormal, MedianIsExpMu) {
  const LogNormal d(3.0, 0.8);
  EXPECT_NEAR(d.quantile(0.5), std::exp(3.0), 1e-6);
}

TEST(Laplace, HeavierTailThanNormalSameVariance) {
  const Laplace lap(0.0, 1.0);            // var 2
  const Normal norm(0.0, std::sqrt(2.0)); // var 2
  EXPECT_GT(1.0 - lap.cdf(5.0), 1.0 - norm.cdf(5.0));
}

TEST(Geometric, PmfSumsToOne) {
  const Geometric d(0.3);
  double acc = 0.0;
  for (int k = 1; k <= 200; ++k) acc += d.pdf(k);
  EXPECT_NEAR(acc, 1.0, 1e-9);
}

TEST(Geometric, MeanAndSamples) {
  const Geometric d(0.25);
  EXPECT_DOUBLE_EQ(d.mean(), 4.0);
  Rng rng(3);
  double acc = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double v = d.sample(rng);
    EXPECT_GE(v, 1.0);
    EXPECT_EQ(v, std::round(v));
    acc += v;
  }
  EXPECT_NEAR(acc / kN, 4.0, 0.05);
}

TEST(Geometric, DegenerateP1AlwaysOne) {
  const Geometric d(1.0);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(d.sample(rng), 1.0);
}

TEST(Uniform, RejectsEmptyInterval) {
  EXPECT_THROW(Uniform(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Uniform(2.0, 1.0), std::invalid_argument);
}

TEST(Mixture, CdfIsWeightedAverage) {
  std::vector<Mixture::Component> comps;
  comps.push_back({0.75, std::make_unique<Exponential>(0.01)});
  comps.push_back({0.25, std::make_unique<Pareto>(1.2, 1000.0)});
  const Mixture mix(std::move(comps));
  const Exponential e(0.01);
  const Pareto p(1.2, 1000.0);
  for (double x : {10.0, 100.0, 1000.0, 10000.0}) {
    EXPECT_NEAR(mix.cdf(x), 0.75 * e.cdf(x) + 0.25 * p.cdf(x), 1e-12);
  }
}

TEST(Mixture, WeightsAreNormalized) {
  std::vector<Mixture::Component> comps;
  comps.push_back({3.0, std::make_unique<Uniform>(0.0, 1.0)});
  comps.push_back({1.0, std::make_unique<Uniform>(10.0, 11.0)});
  const Mixture mix(std::move(comps));
  EXPECT_DOUBLE_EQ(mix.weight(0), 0.75);
  EXPECT_DOUBLE_EQ(mix.weight(1), 0.25);
}

TEST(Mixture, SamplingFrequenciesMatchWeights) {
  std::vector<Mixture::Component> comps;
  comps.push_back({0.8, std::make_unique<Uniform>(0.0, 1.0)});
  comps.push_back({0.2, std::make_unique<Uniform>(100.0, 101.0)});
  const Mixture mix(std::move(comps));
  Rng rng(17);
  int high = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (mix.sample(rng) > 50.0) ++high;
  }
  EXPECT_NEAR(static_cast<double>(high) / kN, 0.2, 0.01);
}

TEST(Mixture, QuantileInvertsMixtureCdf) {
  std::vector<Mixture::Component> comps;
  comps.push_back({0.6, std::make_unique<Exponential>(0.02)});
  comps.push_back({0.4, std::make_unique<Pareto>(1.5, 500.0)});
  const Mixture mix(std::move(comps));
  for (double p = 0.1; p <= 0.9; p += 0.1) {
    EXPECT_NEAR(mix.cdf(mix.quantile(p)), p, 1e-6);
  }
}

TEST(Mixture, RejectsEmptyAndBadWeights) {
  EXPECT_THROW(Mixture(std::vector<Mixture::Component>{}),
               std::invalid_argument);
  std::vector<Mixture::Component> bad;
  bad.push_back({-1.0, std::make_unique<Uniform>(0.0, 1.0)});
  EXPECT_THROW(Mixture(std::move(bad)), std::invalid_argument);
}

TEST(Truncated, MassIsRenormalized) {
  const Truncated t(std::make_unique<Exponential>(0.01), 0.0, 1000.0);
  EXPECT_NEAR(t.cdf(1000.0), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(t.cdf(-1.0), 0.0);
  EXPECT_GT(t.pdf(500.0), Exponential(0.01).pdf(500.0));
}

TEST(Truncated, SamplesStayInRange) {
  const Truncated t(std::make_unique<LogNormal>(6.0, 1.0), 30.0, 21600.0);
  Rng rng(23);
  for (int i = 0; i < 20000; ++i) {
    const double x = t.sample(rng);
    EXPECT_GE(x, 30.0);
    EXPECT_LE(x, 21600.0);
  }
}

TEST(Truncated, NumericMeanMatchesSampleMean) {
  const Truncated t(std::make_unique<Normal>(0.0, 1.0), -1.0, 2.0);
  Rng rng(29);
  constexpr int kN = 200000;
  double acc = 0.0;
  for (int i = 0; i < kN; ++i) acc += t.sample(rng);
  EXPECT_NEAR(acc / kN, t.mean(), 0.01);
}

TEST(Truncated, RejectsEmptyMassWindow) {
  EXPECT_THROW(Truncated(std::make_unique<Uniform>(0.0, 1.0), 5.0, 6.0),
               std::invalid_argument);
}

TEST(StdNormalHelpers, CdfQuantileRoundTrip) {
  for (double p = 0.001; p < 1.0; p += 0.05) {
    EXPECT_NEAR(std_normal_cdf(std_normal_quantile(p)), p, 1e-7);
  }
}

}  // namespace
}  // namespace cloudcr::stats
