#include "stats/renewal.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "stats/distributions.hpp"

namespace cloudcr::stats {
namespace {

TEST(Renewal, EventsAreSortedAndWithinHorizon) {
  Rng rng(3);
  const Exponential d(0.05);
  const auto events = sample_renewal_events(d, 1000.0, rng);
  EXPECT_TRUE(std::is_sorted(events.begin(), events.end()));
  for (double t : events) {
    EXPECT_GT(t, 0.0);
    EXPECT_LE(t, 1000.0);
  }
}

TEST(Renewal, ZeroHorizonYieldsNoEvents) {
  Rng rng(5);
  const Exponential d(1.0);
  EXPECT_TRUE(sample_renewal_events(d, 0.0, rng).empty());
}

TEST(Renewal, NegativeHorizonThrows) {
  Rng rng(5);
  const Exponential d(1.0);
  EXPECT_THROW(sample_renewal_events(d, -1.0, rng), std::invalid_argument);
}

TEST(Renewal, PoissonCountMatchesRate) {
  Rng rng(7);
  const Exponential d(0.01);  // rate 0.01/s
  const double horizon = 10000.0;
  std::size_t total = 0;
  constexpr int kTrials = 500;
  for (int i = 0; i < kTrials; ++i) {
    total += sample_renewal_events(d, horizon, rng).size();
  }
  // Expected 100 events per trial.
  EXPECT_NEAR(static_cast<double>(total) / kTrials, 100.0, 2.0);
}

TEST(Renewal, MaxEventsCapsRunaway) {
  Rng rng(11);
  const Exponential d(1000.0);  // ~1000 events per unit time
  const auto events = sample_renewal_events(d, 1e9, rng, 100);
  EXPECT_EQ(events.size(), 100u);
}

TEST(Renewal, MonteCarloExpectationMatchesPoissonClosedForm) {
  Rng rng(13);
  const double lambda = 0.004;
  const double horizon = 1000.0;
  const Exponential d(lambda);
  const double mc = expected_events_monte_carlo(d, horizon, rng, 4000);
  EXPECT_NEAR(mc, expected_events_poisson(lambda, horizon), 0.2);
}

TEST(Renewal, HeavyTailedProcessHasFewerEventsThanRateSuggests) {
  // For a Pareto renewal process, the few enormous gaps mean the realized
  // event count over a short horizon is far below horizon/mean-gap for a
  // matched exponential — the phenomenon that breaks MTBF estimation.
  Rng rng(17);
  const Pareto pareto(1.1, 10.0);   // mean = 110
  const Exponential exp_d(1.0 / pareto.mean());
  const double horizon = 500.0;
  const double n_pareto =
      expected_events_monte_carlo(pareto, horizon, rng, 3000);
  const double n_exp = expected_events_monte_carlo(exp_d, horizon, rng, 3000);
  EXPECT_GT(n_pareto, n_exp);  // short gaps dominate early
}

TEST(Renewal, ExpectedEventsPoissonValidation) {
  EXPECT_DOUBLE_EQ(expected_events_poisson(0.5, 10.0), 5.0);
  EXPECT_DOUBLE_EQ(expected_events_poisson(0.0, 10.0), 0.0);
  EXPECT_THROW(expected_events_poisson(-1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(expected_events_poisson(1.0, -1.0), std::invalid_argument);
}

TEST(Renewal, ZeroTrialsThrows) {
  Rng rng(19);
  const Exponential d(1.0);
  EXPECT_THROW(expected_events_monte_carlo(d, 1.0, rng, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace cloudcr::stats
