#include "stats/histogram.hpp"

#include <gtest/gtest.h>

namespace cloudcr::stats {
namespace {

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, BucketsValuesCorrectly) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(5.5);
  h.add(9.99);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, UnderOverflow) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);
  h.add(10.0);  // exclusive upper edge
  h.add(100.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, EdgesAreConsistent) {
  Histogram h(10.0, 20.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 12.5);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 17.5);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 20.0);
  EXPECT_THROW((void)h.bin_lo(4), std::out_of_range);
}

TEST(Histogram, FrequenciesSumToOneWithoutOverflow) {
  Histogram h(0.0, 1.0, 4);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i % 4) * 0.25);
  double acc = 0.0;
  for (std::size_t b = 0; b < h.bins(); ++b) acc += h.frequency(b);
  EXPECT_NEAR(acc, 1.0, 1e-12);
}

TEST(Histogram, FrequencyZeroWhenEmpty) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_DOUBLE_EQ(h.frequency(0), 0.0);
}

}  // namespace
}  // namespace cloudcr::stats
