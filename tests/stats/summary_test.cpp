#include "stats/summary.hpp"

#include <gtest/gtest.h>

#include "stats/rng.hpp"

namespace cloudcr::stats {
namespace {

TEST(Summary, EmptyDefaults) {
  const Summary s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Summary, SingleValue) {
  Summary s;
  s.add(7.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 7.0);
  EXPECT_DOUBLE_EQ(s.min(), 7.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Summary, KnownMoments) {
  Summary s;
  for (double v : {2.0, 4.0, 6.0, 8.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 20.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 8.0);
  EXPECT_DOUBLE_EQ(s.sum(), 20.0);
}

TEST(Summary, MergeEqualsSequential) {
  Rng rng(3);
  Summary whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-10.0, 10.0);
    whole.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(Summary, MergeWithEmptyIsIdentity) {
  Summary a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean_before = a.mean();
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);

  Summary b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), mean_before);
}

TEST(Summary, NumericallyStableForLargeOffsets) {
  Summary s;
  const double offset = 1e9;
  for (double v : {offset + 1.0, offset + 2.0, offset + 3.0}) s.add(v);
  EXPECT_NEAR(s.mean(), offset + 2.0, 1e-3);
  EXPECT_NEAR(s.variance(), 1.0, 1e-3);
}

}  // namespace
}  // namespace cloudcr::stats
