#include "stats/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace cloudcr::stats {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDifferentSequences) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() != b()) ++differing;
  }
  EXPECT_GT(differing, 90);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng r(0);
  // Must not be stuck at zero.
  bool any_nonzero = false;
  for (int i = 0; i < 10; ++i) {
    if (r() != 0) any_nonzero = true;
  }
  EXPECT_TRUE(any_nonzero);
}

TEST(Rng, UniformIsInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng r(11);
  double acc = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) acc += r.uniform();
  EXPECT_NEAR(acc / kN, 0.5, 0.01);
}

TEST(Rng, UniformIndexStaysBelowBound) {
  Rng r(13);
  for (std::uint64_t n : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(r.uniform_index(n), n);
    }
  }
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng r(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NormalMomentsMatchStandard) {
  Rng r(19);
  constexpr int kN = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double z = r.normal();
    sum += z;
    sum_sq += z * z;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.02);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng r(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
    EXPECT_FALSE(r.bernoulli(-1.0));
    EXPECT_TRUE(r.bernoulli(2.0));
  }
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng r(29);
  constexpr int kN = 100000;
  int hits = 0;
  for (int i = 0; i < kN; ++i) {
    if (r.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, JumpProducesDisjointStream) {
  Rng a(31);
  Rng b = a.split();
  // The substream should not reproduce the parent's next outputs.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(37);
  Rng c1 = a.split();
  Rng a2(37);
  Rng c2 = a2.split();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(c1(), c2());
}

TEST(Rng, SplitmixExpandsDistinctWords) {
  std::uint64_t s = 42;
  const auto w1 = splitmix64(s);
  const auto w2 = splitmix64(s);
  const auto w3 = splitmix64(s);
  EXPECT_NE(w1, w2);
  EXPECT_NE(w2, w3);
}

}  // namespace
}  // namespace cloudcr::stats
