#include "core/theorems.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/expected_cost.hpp"

namespace cloudcr::core {
namespace {

TEST(Theorem1, WitnessOnPaperExample) {
  const auto w = theorem1_witness(18.0, 2.0, 1.0, 2.0);
  EXPECT_DOUBLE_EQ(w.x_star, 3.0);
  EXPECT_TRUE(w.second_order_positive);
  // E(Tw)(3) = 18 + 2*2 + 1*2 + 18*2/6 = 30.
  EXPECT_DOUBLE_EQ(w.expected_wallclock_at_optimum, 30.0);
}

TEST(Theorem1, DegenerateCaseFallsBackToOneInterval) {
  const auto w = theorem1_witness(10.0, 100.0, 0.0, 0.1);
  EXPECT_LT(w.x_star, 1.0);
  const CostModelInput in{10.0, 100.0, 0.0, 0.1};
  EXPECT_DOUBLE_EQ(w.expected_wallclock_at_optimum,
                   expected_wallclock(in, 1.0));
}

TEST(Corollary1, RecoversYoungFormula) {
  // Under E(Y) = Te/Tf the Formula-3 interval equals sqrt(2 C Tf) exactly.
  for (double tf : {100.0, 236.17, 1000.0, 4199.0}) {
    for (double c : {0.5, 2.0}) {
      const double interval = corollary1_interval(10000.0, c, tf);
      EXPECT_NEAR(interval, std::sqrt(2.0 * c * tf), 1e-9)
          << "Tf=" << tf << " C=" << c;
    }
  }
}

TEST(Corollary1, PaperGoogleNumbers) {
  // lambda = 0.00423445, C=2 -> interval ~30.7 s.
  const double tf = 1.0 / 0.00423445;
  EXPECT_NEAR(corollary1_interval(1000.0, 2.0, tf), 30.74, 0.01);
}

TEST(Corollary1, RejectsBadMtbf) {
  EXPECT_THROW(corollary1_interval(100.0, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(corollary1_interval(100.0, 1.0, -5.0), std::invalid_argument);
}

// Theorem 2 as a property: X(k+1) == X(k) - 1 when MNOF is unchanged,
// across a parameter sweep.
struct T2Case {
  double tr, ey, c;
};

class Theorem2Sweep : public ::testing::TestWithParam<T2Case> {};

TEST_P(Theorem2Sweep, NextCountIsExactlyOneLess) {
  const auto& p = GetParam();
  const auto step = theorem2_step(p.tr, p.ey, p.c);
  if (step.x_expected <= 0.0) GTEST_SKIP() << "fewer than two intervals";
  EXPECT_NEAR(step.x_next, step.x_expected, 1e-9);
}

TEST_P(Theorem2Sweep, RemainingWorkShrinksByOneInterval) {
  const auto& p = GetParam();
  const double x = optimal_interval_count(p.tr, p.c, p.ey);
  const auto step = theorem2_step(p.tr, p.ey, p.c);
  if (step.x_expected <= 0.0) GTEST_SKIP();
  EXPECT_NEAR(step.remaining_next, p.tr - p.tr / x, 1e-9);
}

TEST_P(Theorem2Sweep, IterationWalksDownToOne) {
  // Applying the step repeatedly must tick the count down 1 per checkpoint.
  const auto& p = GetParam();
  double tr = p.tr;
  double ey = p.ey;
  double x = optimal_interval_count(tr, p.c, ey);
  int guard = 0;
  while (x > 1.0 && guard++ < 10000) {
    const auto step = theorem2_step(tr, ey, p.c);
    EXPECT_NEAR(step.x_next, x - 1.0, 1e-6);
    ey *= step.remaining_next / tr;
    tr = step.remaining_next;
    x = step.x_next;
  }
  EXPECT_LT(guard, 10000);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Theorem2Sweep,
    ::testing::Values(T2Case{1000.0, 4.0, 2.0}, T2Case{18.0, 2.0, 2.0},
                      T2Case{441.0, 2.0, 1.0}, T2Case{5000.0, 10.0, 1.67},
                      T2Case{200.0, 2.0, 0.632}, T2Case{750.0, 0.9, 0.25}));

TEST(Theorem2, ChangedMnofBreaksTheInvariant) {
  // If MNOF doubles between checkpoints, X(*) != X* - 1.
  const double tr = 1000.0, ey = 4.0, c = 2.0;
  const double x = optimal_interval_count(tr, c, ey);
  const double tr_next = tr * (x - 1.0) / x;
  // MNOF doubled: E_{k+1} = 2 * ey * tr_next / tr.
  const double e_next = 2.0 * ey * tr_next / tr;
  const double x_next = optimal_interval_count(tr_next, c, e_next);
  EXPECT_GT(std::abs(x_next - (x - 1.0)), 0.5);
}

TEST(Theorem2, NoNextPositionForSingleInterval) {
  const auto step = theorem2_step(10.0, 0.01, 5.0);
  EXPECT_DOUBLE_EQ(step.x_next, 0.0);
  EXPECT_DOUBLE_EQ(step.x_expected, 0.0);
}

}  // namespace
}  // namespace cloudcr::core
