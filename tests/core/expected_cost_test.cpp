#include "core/expected_cost.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cloudcr::core {
namespace {

TEST(ExpectedCost, PaperWorkedExample) {
  // Theorem 1 remark: Te=18, C=2, E(Y)=2 -> x* = sqrt(18*2/4) = 3,
  // checkpoint every 6 seconds.
  const double x = optimal_interval_count(18.0, 2.0, 2.0);
  EXPECT_DOUBLE_EQ(x, 3.0);
  EXPECT_DOUBLE_EQ(interval_length(18.0, x), 6.0);
}

TEST(ExpectedCost, Section422Examples) {
  // The paper's storage-selection example: Te=200, E(Y)=2.
  // Local: C=0.632 -> x* = sqrt(200*2/(2*0.632)) = 17.79.
  EXPECT_NEAR(optimal_interval_count(200.0, 0.632, 2.0), 17.79, 0.01);
  // Shared: C=1.67 -> x* = 10.94.
  EXPECT_NEAR(optimal_interval_count(200.0, 1.67, 2.0), 10.94, 0.01);
}

TEST(ExpectedCost, Section422TotalCosts) {
  // Total costs quoted in the paper: 28.29 (local) and 37.78 (shared).
  const CostModelInput local{200.0, 0.632, 3.22, 2.0};
  const CostModelInput shared{200.0, 1.67, 1.45, 2.0};
  EXPECT_NEAR(expected_overhead(local, 17.79), 28.29, 0.02);
  EXPECT_NEAR(expected_overhead(shared, 10.94), 37.78, 0.02);
}

TEST(ExpectedCost, AnotherPaperExample) {
  // Section 4.2.2: length 441 s, C=1 s, E(Y)=2 -> sqrt(441*2/2) = 21
  // intervals, i.e. 20 checkpoints.
  const double x = optimal_interval_count(441.0, 1.0, 2.0);
  EXPECT_DOUBLE_EQ(x, 21.0);
}

TEST(ExpectedCost, FormulaFourShape) {
  const CostModelInput in{100.0, 2.0, 1.0, 4.0};
  // E(Tw)(x) = 100 + 2(x-1) + 4 + 200/x
  EXPECT_DOUBLE_EQ(expected_wallclock(in, 1.0), 100.0 + 0.0 + 4.0 + 200.0);
  EXPECT_DOUBLE_EQ(expected_wallclock(in, 10.0), 100.0 + 18.0 + 4.0 + 20.0);
}

TEST(ExpectedCost, OverheadIsWallclockMinusWork) {
  const CostModelInput in{500.0, 1.5, 2.0, 3.0};
  for (double x : {1.0, 2.0, 5.0, 20.0}) {
    EXPECT_DOUBLE_EQ(expected_overhead(in, x),
                     expected_wallclock(in, x) - in.work_s);
  }
}

// Property: x* minimizes Formula (4) over a dense grid (TEST_P sweep across
// model inputs).
struct CostCase {
  double te, c, r, ey;
};

class OptimalityProperty : public ::testing::TestWithParam<CostCase> {};

TEST_P(OptimalityProperty, ContinuousOptimumBeatsGrid) {
  const auto& p = GetParam();
  const CostModelInput in{p.te, p.c, p.r, p.ey};
  const double x_star = optimal_interval_count(p.te, p.c, p.ey);
  if (x_star < 1.0) GTEST_SKIP() << "degenerate optimum below one interval";
  const double best = expected_wallclock(in, x_star);
  for (double x = 1.0; x <= x_star * 4.0; x += 0.25) {
    EXPECT_GE(expected_wallclock(in, x) + 1e-9, best) << "x=" << x;
  }
}

TEST_P(OptimalityProperty, IntegerOptimumBeatsIntegerNeighbors) {
  const auto& p = GetParam();
  const CostModelInput in{p.te, p.c, p.r, p.ey};
  const int xi = optimal_interval_count_integer(in);
  ASSERT_GE(xi, 1);
  const double best = expected_wallclock(in, xi);
  for (int x = 1; x <= xi * 3 + 3; ++x) {
    EXPECT_GE(expected_wallclock(in, x) + 1e-9, best) << "x=" << x;
  }
}

TEST_P(OptimalityProperty, SecondDerivativePositive) {
  const auto& p = GetParam();
  const CostModelInput in{p.te, p.c, p.r, p.ey};
  const double x_star = std::max(1.0, optimal_interval_count(p.te, p.c, p.ey));
  // Numerical convexity check around the optimum.
  const double h = 0.01;
  if (x_star <= 1.0 + h) GTEST_SKIP();
  const double mid = expected_wallclock(in, x_star);
  const double lo = expected_wallclock(in, x_star - h);
  const double hi = expected_wallclock(in, x_star + h);
  EXPECT_GT(lo + hi - 2.0 * mid, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OptimalityProperty,
    ::testing::Values(CostCase{18.0, 2.0, 1.0, 2.0},
                      CostCase{100.0, 0.632, 3.22, 1.0},
                      CostCase{441.0, 1.0, 0.5, 2.0},
                      CostCase{1000.0, 2.0, 2.0, 5.0},
                      CostCase{3600.0, 1.67, 1.45, 12.0},
                      CostCase{200.0, 0.016, 0.71, 0.5},
                      CostCase{10000.0, 6.83, 5.69, 30.0},
                      CostCase{50.0, 2.52, 2.4, 0.2}));

TEST(ExpectedCost, ZeroFailuresMeansOneInterval) {
  const CostModelInput in{100.0, 2.0, 1.0, 0.0};
  EXPECT_EQ(optimal_interval_count_integer(in), 1);
  EXPECT_DOUBLE_EQ(optimal_interval_count(100.0, 2.0, 0.0), 0.0);
}

TEST(ExpectedCost, MoreFailuresMoreCheckpoints) {
  double prev = 0.0;
  for (double ey : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    const double x = optimal_interval_count(1000.0, 2.0, ey);
    EXPECT_GT(x, prev);
    prev = x;
  }
}

TEST(ExpectedCost, CostlierCheckpointsFewerCheckpoints) {
  double prev = 1e18;
  for (double c : {0.1, 0.5, 1.0, 2.0, 5.0}) {
    const double x = optimal_interval_count(1000.0, c, 2.0);
    EXPECT_LT(x, prev);
    prev = x;
  }
}

TEST(ExpectedCost, InputValidation) {
  EXPECT_THROW(optimal_interval_count(-1.0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(optimal_interval_count(1.0, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(optimal_interval_count(1.0, 1.0, -1.0), std::invalid_argument);
  const CostModelInput in{100.0, 2.0, 1.0, 1.0};
  EXPECT_THROW(expected_wallclock(in, 0.5), std::invalid_argument);
  EXPECT_THROW(interval_length(10.0, 0.0), std::invalid_argument);
  const CostModelInput bad{100.0, 2.0, -1.0, 1.0};
  EXPECT_THROW(expected_wallclock(bad, 1.0), std::invalid_argument);
}

TEST(ExpectedCost, RestartCostShiftsLevelNotOptimum) {
  // R*E(Y) is additive: it moves E(Tw) but not x*.
  const CostModelInput r0{300.0, 1.0, 0.0, 3.0};
  const CostModelInput r5{300.0, 1.0, 5.0, 3.0};
  EXPECT_EQ(optimal_interval_count_integer(r0),
            optimal_interval_count_integer(r5));
  EXPECT_DOUBLE_EQ(expected_wallclock(r5, 7.0) - expected_wallclock(r0, 7.0),
                   15.0);
}

}  // namespace
}  // namespace cloudcr::core
