#include "core/storage_selector.hpp"

#include <gtest/gtest.h>

namespace cloudcr::core {
namespace {

TEST(StorageSelector, PaperSection422Example) {
  // Te=200 s, 160 MB, E(Y)=2: the paper computes total costs 28.29 (local)
  // vs 37.78 (shared) and picks the local ramdisk.
  const auto d = select_storage(200.0, 160.0, 2.0);
  EXPECT_EQ(d.device, storage::DeviceKind::kLocalRamdisk);
  EXPECT_NEAR(d.local_overhead_s, 28.29, 0.35);   // integer-x quantization
  EXPECT_NEAR(d.shared_overhead_s, 37.78, 0.35);
  EXPECT_DOUBLE_EQ(d.local_cost_s, 0.632);
  EXPECT_DOUBLE_EQ(d.shared_cost_s, 1.67);
  EXPECT_DOUBLE_EQ(d.local_restart_s, 3.22);
  EXPECT_DOUBLE_EQ(d.shared_restart_s, 1.45);
}

TEST(StorageSelector, IntervalCountsNearPaperValues) {
  const auto d = select_storage(200.0, 160.0, 2.0);
  EXPECT_NEAR(d.local_intervals, 17.79, 1.0);
  EXPECT_NEAR(d.shared_intervals, 10.94, 1.0);
}

TEST(StorageSelector, ManyFailuresFavorSharedDisk) {
  // With frequent failures the restart-cost term R*E(Y) dominates, and the
  // shared disk's cheaper migration-type-B restarts win.
  const auto d = select_storage(200.0, 160.0, 40.0);
  EXPECT_EQ(d.device, storage::DeviceKind::kDmNfs);
  EXPECT_LT(d.shared_overhead_s, d.local_overhead_s);
}

TEST(StorageSelector, RareFailuresFavorLocal) {
  const auto d = select_storage(1000.0, 160.0, 0.5);
  EXPECT_EQ(d.device, storage::DeviceKind::kLocalRamdisk);
}

TEST(StorageSelector, DecisionMatchesOverheadComparison) {
  for (double ey : {0.2, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0}) {
    for (double mem : {10.0, 80.0, 160.0, 240.0}) {
      const auto d = select_storage(500.0, mem, ey);
      if (d.device == storage::DeviceKind::kLocalRamdisk) {
        EXPECT_LT(d.local_overhead_s, d.shared_overhead_s);
      } else {
        EXPECT_GE(d.local_overhead_s, d.shared_overhead_s);
      }
    }
  }
}

TEST(StorageSelector, SharedKindIsRespected) {
  const auto d = select_storage(200.0, 160.0, 40.0,
                                storage::DeviceKind::kSharedNfs);
  EXPECT_EQ(d.device, storage::DeviceKind::kSharedNfs);
}

TEST(StorageSelector, RejectsLocalAsSharedKind) {
  EXPECT_THROW(select_storage_with_costs(
                   100.0, 1.0, 0.5, 3.0, 1.5, 1.0,
                   storage::DeviceKind::kLocalRamdisk),
               std::invalid_argument);
}

TEST(StorageSelector, ExplicitCostsBruteForceAgreement) {
  // Cross-check the decision against brute-force minimization of Formula (4)
  // over both devices and a dense integer grid.
  const double work = 600.0, ey = 3.0;
  const double cl = 0.4, rl = 2.8, cs = 1.2, rs = 1.1;
  const auto d = select_storage_with_costs(work, ey, cl, rl, cs, rs,
                                           storage::DeviceKind::kDmNfs);
  auto brute = [&](double c, double r) {
    double best = 1e300;
    for (int x = 1; x <= 400; ++x) {
      const CostModelInput in{work, c, r, ey};
      best = std::min(best, expected_overhead(in, x));
    }
    return best;
  };
  EXPECT_NEAR(d.local_overhead_s, brute(cl, rl), 1e-9);
  EXPECT_NEAR(d.shared_overhead_s, brute(cs, rs), 1e-9);
}

TEST(StorageSelector, ZeroFailuresPicksLocal) {
  // No failures: overhead reduces to C(x-1) with x=1 -> 0 for both; tie goes
  // to shared by the strict comparison, so verify both overheads are zero.
  const auto d = select_storage(500.0, 100.0, 0.0);
  EXPECT_DOUBLE_EQ(d.local_overhead_s, 0.0);
  EXPECT_DOUBLE_EQ(d.shared_overhead_s, 0.0);
}

}  // namespace
}  // namespace cloudcr::core
