#include "core/controller.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cloudcr::core {
namespace {

const MnofPolicy kPolicy;  // shared stateless policy

CheckpointController make_controller(
    double te = 400.0, double mem = 160.0, double mnof = 2.0,
    AdaptationMode mode = AdaptationMode::kAdaptive) {
  return CheckpointController(kPolicy, te, mem, FailureStats{mnof, 200.0},
                              mode);
}

TEST(Controller, InitialPlanMatchesPolicy) {
  auto ctl = make_controller();
  PolicyContext ctx;
  ctx.total_work_s = 400.0;
  ctx.remaining_work_s = 400.0;
  const auto& d = ctl.storage_decision();
  ctx.checkpoint_cost_s = d.device == storage::DeviceKind::kLocalRamdisk
                              ? d.local_cost_s
                              : d.shared_cost_s;
  ctx.restart_cost_s = d.device == storage::DeviceKind::kLocalRamdisk
                           ? d.local_restart_s
                           : d.shared_restart_s;
  ctx.stats = {2.0, 200.0};
  EXPECT_NEAR(ctl.current_interval(), kPolicy.next_interval(ctx), 1e-9);
}

TEST(Controller, FirstCheckpointAtOneInterval) {
  auto ctl = make_controller();
  const auto next = ctl.work_until_next_checkpoint(0.0);
  ASSERT_TRUE(next.has_value());
  EXPECT_NEAR(*next, ctl.current_interval(), 1e-9);
}

TEST(Controller, PositionsAreEquidistant) {
  auto ctl = make_controller();
  const double w = ctl.current_interval();
  // From just after the k-th checkpoint, the next is one interval ahead.
  for (int k = 0; k < 5; ++k) {
    const double progress = k * w + 1e-6;
    const auto next = ctl.work_until_next_checkpoint(progress);
    ASSERT_TRUE(next.has_value()) << "k=" << k;
    EXPECT_NEAR(progress + *next, (k + 1) * w, 1e-6);
  }
}

TEST(Controller, NoCheckpointAtOrBeyondTaskEnd) {
  auto ctl = make_controller(100.0, 160.0, 0.01);
  // x* < 1: single interval, no checkpoint before the end.
  EXPECT_FALSE(ctl.work_until_next_checkpoint(0.0).has_value());
  EXPECT_FALSE(ctl.work_until_next_checkpoint(99.0).has_value());
  EXPECT_FALSE(ctl.work_until_next_checkpoint(100.0).has_value());
}

TEST(Controller, Theorem2NoReplanWhileMnofUnchanged) {
  auto ctl = make_controller();
  const double w = ctl.current_interval();
  for (int k = 1; k <= 4; ++k) {
    ctl.on_checkpoint(k * w);
    EXPECT_EQ(ctl.replan_count(), 0) << "checkpoint " << k;
    EXPECT_NEAR(ctl.current_interval(), w, 1e-9);
  }
}

TEST(Controller, AdaptiveReplansImmediatelyOnMnofChange) {
  auto ctl = make_controller(400.0, 160.0, 2.0, AdaptationMode::kAdaptive);
  const double w0 = ctl.current_interval();
  // Algorithm 1 checks "MNOF changed" every polling tick: the new plan is in
  // force right away, anchored at the current progress.
  ctl.update_stats(FailureStats{8.0, 200.0}, /*progress_s=*/100.0);
  EXPECT_EQ(ctl.replan_count(), 1);
  // Quadrupled MNOF halves the interval: sqrt(2 C Te / mnof).
  EXPECT_LT(ctl.current_interval(), w0 * 0.6);
  const auto next = ctl.work_until_next_checkpoint(100.0);
  ASSERT_TRUE(next.has_value());
  EXPECT_NEAR(*next, ctl.current_interval(), 1e-9);
}

TEST(Controller, AdaptiveRescuesTaskWithNoPlannedCheckpoints) {
  // A calm task plans zero checkpoints; when its failure rate explodes the
  // adaptive controller must start checkpointing anyway — there is no
  // checkpoint boundary to wait for.
  auto ctl = make_controller(100.0, 160.0, 0.01, AdaptationMode::kAdaptive);
  EXPECT_FALSE(ctl.work_until_next_checkpoint(50.0).has_value());
  ctl.update_stats(FailureStats{20.0, 40.0}, /*progress_s=*/50.0);
  EXPECT_TRUE(ctl.work_until_next_checkpoint(50.0).has_value());
}

TEST(Controller, UnchangedStatsDoNotTriggerReplan) {
  auto ctl = make_controller(400.0, 160.0, 2.0, AdaptationMode::kAdaptive);
  ctl.update_stats(FailureStats{2.0, 200.0}, 50.0);  // identical stats
  EXPECT_EQ(ctl.replan_count(), 0);
}

TEST(Controller, StaticIgnoresStatsUpdates) {
  auto ctl = make_controller(400.0, 160.0, 2.0, AdaptationMode::kStatic);
  const double w0 = ctl.current_interval();
  ctl.update_stats(FailureStats{50.0, 10.0}, 10.0);
  ctl.on_checkpoint(w0);
  EXPECT_EQ(ctl.replan_count(), 0);
  EXPECT_NEAR(ctl.current_interval(), w0, 1e-9);
}

TEST(Controller, RollbackKeepsPositions) {
  auto ctl = make_controller();
  const double w = ctl.current_interval();
  ctl.on_checkpoint(w);
  ctl.on_checkpoint(2 * w);
  // Failure rolls the task back to 2w; next checkpoint stays at 3w.
  ctl.on_rollback(2 * w);
  const auto next = ctl.work_until_next_checkpoint(2 * w);
  ASSERT_TRUE(next.has_value());
  EXPECT_NEAR(*next, w, 1e-9);
}

TEST(Controller, RollbackToZeroRestartsSequence) {
  auto ctl = make_controller();
  const double w = ctl.current_interval();
  ctl.on_rollback(0.0);
  const auto next = ctl.work_until_next_checkpoint(0.0);
  ASSERT_TRUE(next.has_value());
  EXPECT_NEAR(*next, w, 1e-9);
}

TEST(Controller, ForcedDeviceOverridesSelection) {
  // Pick parameters where auto-select chooses local, then force shared.
  CheckpointController forced(kPolicy, 200.0, 160.0, FailureStats{2.0, 100.0},
                              AdaptationMode::kAdaptive,
                              storage::DeviceKind::kDmNfs,
                              storage::DeviceKind::kDmNfs);
  EXPECT_EQ(forced.storage_decision().device, storage::DeviceKind::kDmNfs);

  CheckpointController auto_sel(kPolicy, 200.0, 160.0,
                                FailureStats{2.0, 100.0},
                                AdaptationMode::kAdaptive);
  EXPECT_EQ(auto_sel.storage_decision().device,
            storage::DeviceKind::kLocalRamdisk);
  // Forcing the dearer device yields a longer interval (higher C).
  EXPECT_GT(forced.current_interval(), auto_sel.current_interval());
}

TEST(Controller, RejectsNonPositiveWork) {
  EXPECT_THROW(make_controller(0.0), std::invalid_argument);
  EXPECT_THROW(make_controller(-10.0), std::invalid_argument);
}

TEST(Controller, CompletionReturnsNoCheckpoint) {
  auto ctl = make_controller();
  EXPECT_FALSE(ctl.work_until_next_checkpoint(400.0).has_value());
  EXPECT_FALSE(ctl.work_until_next_checkpoint(500.0).has_value());
}

TEST(Controller, AdaptiveReplanUsesRemainingWork) {
  auto ctl = make_controller(400.0, 160.0, 2.0, AdaptationMode::kAdaptive);
  const double w0 = ctl.current_interval();
  ctl.on_checkpoint(w0);
  // Epsilon change at 3/4 progress: re-plans over the remaining quarter.
  ctl.update_stats(FailureStats{2.0000001, 200.0}, 300.0);
  EXPECT_EQ(ctl.replan_count(), 1);
  // New interval computed over remaining 100 s with scaled-down MNOF; the
  // closed form keeps interval = sqrt(2 C Te/mnof) ~ w0 (MNOF per full task
  // unchanged up to epsilon).
  EXPECT_NEAR(ctl.current_interval(), w0, 0.05 * w0);
}

}  // namespace
}  // namespace cloudcr::core
