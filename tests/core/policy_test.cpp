#include "core/policy.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cloudcr::core {
namespace {

PolicyContext make_ctx(double te, double c, double mnof, double mtbf,
                       double remaining = -1.0) {
  PolicyContext ctx;
  ctx.total_work_s = te;
  ctx.remaining_work_s = remaining < 0.0 ? te : remaining;
  ctx.checkpoint_cost_s = c;
  ctx.restart_cost_s = 1.0;
  ctx.stats = {mnof, mtbf};
  return ctx;
}

TEST(MnofPolicy, ClosedFormInterval) {
  // interval = sqrt(2*C*Te/mnof), independent of remaining work.
  const MnofPolicy policy(/*integer_rounding=*/false);
  const auto ctx = make_ctx(1000.0, 2.0, 4.0, 0.0);
  EXPECT_NEAR(policy.next_interval(ctx), std::sqrt(2.0 * 2.0 * 1000.0 / 4.0),
              1e-9);
}

TEST(MnofPolicy, IntervalInvariantUnderProgress) {
  // Theorem 2 consequence: with unchanged MNOF the interval stays identical
  // as the remaining work shrinks.
  const MnofPolicy policy(/*integer_rounding=*/false);
  const double full =
      policy.next_interval(make_ctx(1000.0, 2.0, 4.0, 0.0));
  for (double remaining : {900.0, 600.0, 300.0, 100.0}) {
    const double i =
        policy.next_interval(make_ctx(1000.0, 2.0, 4.0, 0.0, remaining));
    EXPECT_NEAR(i, full, 1e-9) << "remaining=" << remaining;
  }
}

TEST(MnofPolicy, PaperExampleEighteenSeconds) {
  const MnofPolicy policy(/*integer_rounding=*/false);
  // Te=18, C=2, E(Y)=2 -> 3 intervals of 6 s.
  EXPECT_NEAR(policy.next_interval(make_ctx(18.0, 2.0, 2.0, 0.0)), 6.0, 1e-9);
}

TEST(MnofPolicy, ZeroMnofNeverCheckpoints) {
  const MnofPolicy policy;
  const auto ctx = make_ctx(500.0, 2.0, 0.0, 100.0);
  EXPECT_DOUBLE_EQ(policy.next_interval(ctx), 500.0);
}

TEST(MnofPolicy, LowMnofCheckpointsOncePerRemainder) {
  const MnofPolicy policy;
  // x* < 1 -> do not split the work at all.
  const auto ctx = make_ctx(10.0, 5.0, 0.1, 0.0);
  EXPECT_DOUBLE_EQ(policy.next_interval(ctx), 10.0);
}

TEST(MnofPolicy, IntegerRoundingUsesFormula4) {
  const MnofPolicy rounded(true);
  const MnofPolicy continuous(false);
  const auto ctx = make_ctx(1000.0, 2.0, 3.0, 0.0);
  // x* = sqrt(1500/2) = 27.39 -> integer optimum 27, interval 1000/27.
  EXPECT_NEAR(rounded.next_interval(ctx), 1000.0 / 27.0, 1e-9);
  EXPECT_NEAR(continuous.next_interval(ctx), 1000.0 / 27.386, 1e-3);
}

TEST(MnofPolicy, ScalesExpectationToRemainingWork) {
  // With remaining = Te/4, E_r = mnof/4; x*(remaining) = remaining *
  // sqrt(mnof/(2C Te)) — interval unchanged, but the *count* shrinks.
  const MnofPolicy policy(false);
  const auto full_ctx = make_ctx(1600.0, 2.0, 4.0, 0.0);
  const auto part_ctx = make_ctx(1600.0, 2.0, 4.0, 0.0, 400.0);
  const double i_full = policy.next_interval(full_ctx);
  const double i_part = policy.next_interval(part_ctx);
  EXPECT_NEAR(i_full, i_part, 1e-9);
}

TEST(YoungPolicy, ClosedForm) {
  const YoungPolicy policy;
  // Tc = sqrt(2 * C * Tf); paper example: C=2, Tf=1/0.00423445 -> ~30.7 s.
  const auto ctx = make_ctx(1000.0, 2.0, 0.0, 1.0 / 0.00423445);
  EXPECT_NEAR(policy.next_interval(ctx), 30.7, 0.05);
}

TEST(YoungPolicy, IgnoresMnof) {
  const YoungPolicy policy;
  const double a = policy.next_interval(make_ctx(1000.0, 2.0, 0.0, 400.0));
  const double b = policy.next_interval(make_ctx(1000.0, 2.0, 99.0, 400.0));
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(YoungPolicy, NoMtbfMeansNoCheckpointing) {
  const YoungPolicy policy;
  EXPECT_DOUBLE_EQ(policy.next_interval(make_ctx(750.0, 2.0, 1.0, 0.0)),
                   750.0);
}

TEST(YoungPolicy, InflatedMtbfStretchesInterval) {
  // The failure mode the paper exploits: a Pareto-inflated MTBF makes Young
  // checkpoint far too rarely.
  const YoungPolicy policy;
  const double honest = policy.next_interval(make_ctx(1000.0, 2.0, 0.0, 179.0));
  const double inflated =
      policy.next_interval(make_ctx(1000.0, 2.0, 0.0, 4199.0));
  EXPECT_GT(inflated, 4.0 * honest);
}

TEST(DalyPolicy, ReducesToYoungForSmallC) {
  const DalyPolicy daly;
  const YoungPolicy young;
  const auto ctx = make_ctx(100000.0, 0.01, 0.0, 10000.0);
  const double d = daly.next_interval(ctx);
  const double y = young.next_interval(ctx);
  EXPECT_NEAR(d / y, 1.0, 0.01);
}

TEST(DalyPolicy, CapsAtMtbfForHugeC) {
  const DalyPolicy daly;
  const auto ctx = make_ctx(1000.0, 300.0, 0.0, 100.0);  // C >= 2*MTBF
  EXPECT_DOUBLE_EQ(daly.next_interval(ctx), 100.0);
}

TEST(DalyPolicy, HigherOrderTermsShortenInterval) {
  // For non-negligible C/MTBF, Daly's interval is below Young's.
  const DalyPolicy daly;
  const YoungPolicy young;
  const auto ctx = make_ctx(10000.0, 30.0, 0.0, 200.0);
  EXPECT_LT(daly.next_interval(ctx), young.next_interval(ctx));
}

TEST(NoCheckpointPolicy, AlwaysReturnsRemaining) {
  const NoCheckpointPolicy policy;
  EXPECT_DOUBLE_EQ(policy.next_interval(make_ctx(123.0, 1.0, 5.0, 5.0)),
                   123.0);
  EXPECT_DOUBLE_EQ(
      policy.next_interval(make_ctx(123.0, 1.0, 5.0, 5.0, 45.0)), 45.0);
}

TEST(FixedIntervalPolicy, ReturnsConfiguredInterval) {
  const FixedIntervalPolicy policy(42.0);
  EXPECT_DOUBLE_EQ(policy.next_interval(make_ctx(1000.0, 1.0, 1.0, 1.0)),
                   42.0);
  EXPECT_EQ(policy.name(), "fixed(42s)");
}

TEST(FixedIntervalPolicy, RejectsNonPositive) {
  EXPECT_THROW(FixedIntervalPolicy(0.0), std::invalid_argument);
  EXPECT_THROW(FixedIntervalPolicy(-5.0), std::invalid_argument);
}

TEST(Policies, ValidateContext) {
  const MnofPolicy policy;
  auto bad = make_ctx(0.0, 1.0, 1.0, 1.0);
  EXPECT_THROW((void)policy.next_interval(bad), std::invalid_argument);
  auto bad2 = make_ctx(10.0, 0.0, 1.0, 1.0);
  EXPECT_THROW((void)policy.next_interval(bad2), std::invalid_argument);
  auto bad3 = make_ctx(10.0, 1.0, 1.0, 1.0);
  bad3.remaining_work_s = 20.0;
  EXPECT_THROW((void)policy.next_interval(bad3), std::invalid_argument);
}

TEST(Policies, NamesAreStable) {
  EXPECT_EQ(MnofPolicy().name(), "formula3");
  EXPECT_EQ(YoungPolicy().name(), "young");
  EXPECT_EQ(DalyPolicy().name(), "daly");
  EXPECT_EQ(NoCheckpointPolicy().name(), "none");
}

// Corollary 1 as a property: under exponential failures (E(Y) = Te/MTBF)
// and small C, the MNOF interval converges to Young's.
class Corollary1Sweep
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(Corollary1Sweep, MnofMatchesYoungUnderPoissonAssumption) {
  const auto [te, mtbf] = GetParam();
  const double c = 0.5;  // small relative to intervals
  const MnofPolicy mnof_policy(false);
  const YoungPolicy young_policy;
  const double ey = te / mtbf;  // Poisson E(Y)
  const double i_mnof = mnof_policy.next_interval(make_ctx(te, c, ey, mtbf));
  const double i_young = young_policy.next_interval(make_ctx(te, c, ey, mtbf));
  EXPECT_NEAR(i_mnof / i_young, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Corollary1Sweep,
    ::testing::Values(std::pair{1000.0, 236.0}, std::pair{5000.0, 500.0},
                      std::pair{800.0, 100.0}, std::pair{20000.0, 2000.0},
                      std::pair{350.0, 37.0}));

}  // namespace
}  // namespace cloudcr::core
