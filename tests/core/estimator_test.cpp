#include "core/estimator.hpp"

#include <gtest/gtest.h>

namespace cloudcr::core {
namespace {

TaskObservation obs(int priority, double length, std::size_t failures,
                    std::vector<double> intervals) {
  TaskObservation o;
  o.priority = priority;
  o.length_s = length;
  o.failures = failures;
  o.intervals_s = std::move(intervals);
  return o;
}

TEST(GroupedEstimator, EmptyReturnsZeros) {
  const GroupedEstimator est;
  const auto s = est.query(1);
  EXPECT_DOUBLE_EQ(s.mnof, 0.0);
  EXPECT_DOUBLE_EQ(s.mtbf_s, 0.0);
  EXPECT_EQ(est.total_observations(), 0u);
}

TEST(GroupedEstimator, SingleGroupStatistics) {
  GroupedEstimator est;
  est.observe(obs(3, 100.0, 2, {20.0, 30.0, 50.0}));
  est.observe(obs(3, 200.0, 0, {200.0}));
  const auto s = est.query(3);
  EXPECT_DOUBLE_EQ(s.mnof, 1.0);                      // 2 failures / 2 tasks
  EXPECT_DOUBLE_EQ(s.mtbf_s, (100.0 + 200.0) / 4.0);  // 4 intervals
  EXPECT_EQ(est.group_size(3), 2u);
}

TEST(GroupedEstimator, FallsBackToOverall) {
  GroupedEstimator est;
  est.observe(obs(1, 100.0, 4, {25.0}));
  // Priority 7 has no data; the overall aggregate answers.
  const auto s = est.query(7);
  EXPECT_DOUBLE_EQ(s.mnof, 4.0);
  EXPECT_DOUBLE_EQ(s.mtbf_s, 25.0);
}

TEST(GroupedEstimator, LengthLimitFiltersObservations) {
  GroupedEstimator est(150.0);
  est.observe(obs(2, 100.0, 1, {50.0, 50.0}));
  est.observe(obs(2, 1000.0, 9, {10.0}));  // over the limit: dropped
  const auto s = est.query(2);
  EXPECT_DOUBLE_EQ(s.mnof, 1.0);
  EXPECT_DOUBLE_EQ(s.mtbf_s, 50.0);
  EXPECT_EQ(est.total_observations(), 1u);
}

TEST(GroupedEstimator, PrioritiesAreIndependent) {
  GroupedEstimator est;
  est.observe(obs(1, 100.0, 10, {10.0}));
  est.observe(obs(12, 100.0, 0, {100.0}));
  EXPECT_DOUBLE_EQ(est.query(1).mnof, 10.0);
  EXPECT_DOUBLE_EQ(est.query(12).mnof, 0.0);
}

TEST(GroupedEstimator, RejectsBadPriority) {
  GroupedEstimator est;
  EXPECT_THROW(est.observe(obs(0, 1.0, 0, {})), std::out_of_range);
  EXPECT_THROW(est.observe(obs(13, 1.0, 0, {})), std::out_of_range);
  EXPECT_THROW((void)est.query(0), std::out_of_range);
  EXPECT_THROW((void)est.query(13), std::out_of_range);
}

TEST(GroupedEstimator, RejectsBadLimit) {
  EXPECT_THROW(GroupedEstimator(0.0), std::invalid_argument);
  EXPECT_THROW(GroupedEstimator(-1.0), std::invalid_argument);
}

TEST(GroupedEstimator, GroupSizeOutOfRangeIsZero) {
  const GroupedEstimator est;
  EXPECT_EQ(est.group_size(0), 0u);
  EXPECT_EQ(est.group_size(42), 0u);
}

TEST(GroupedEstimator, MtbfInflationScenario) {
  // The Table 7 phenomenon in miniature: short harassed tasks plus long safe
  // tasks blow up MTBF while MNOF moves modestly.
  GroupedEstimator all_est;
  GroupedEstimator short_est(1000.0);
  for (int i = 0; i < 100; ++i) {
    const auto short_task = obs(2, 500.0, 2, {100.0, 150.0, 250.0});
    all_est.observe(short_task);
    short_est.observe(short_task);
    const auto long_task = obs(2, 20000.0, 0, {20000.0});
    all_est.observe(long_task);
    short_est.observe(long_task);  // filtered out by the limit
  }
  const auto s_short = short_est.query(2);
  const auto s_all = all_est.query(2);
  EXPECT_GT(s_all.mtbf_s, 10.0 * s_short.mtbf_s);
  EXPECT_LT(s_all.mnof / s_short.mnof, 1.01);
}

}  // namespace
}  // namespace cloudcr::core
